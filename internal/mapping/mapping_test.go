package mapping

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

func TestMapBasicInvariants(t *testing.T) {
	p, _ := sparse.Grid3D(8, 8, 8, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	m, err := Map(tr, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Every node has a master in range.
	for i := range tr.Nodes {
		if m.Master[i] < 0 || m.Master[i] >= 8 {
			t.Fatalf("node %d master %d out of range", i, m.Master[i])
		}
	}
	// Subtree nodes inherit the subtree owner.
	for i := range tr.Nodes {
		if s := tr.Nodes[i].Subtree; s >= 0 {
			if m.Master[i] != m.SubtreeProc[s] {
				t.Fatal("subtree node not owned by subtree processor")
			}
		}
	}
	// Initial loads sum to the cost of all subtree nodes.
	var want float64
	for i := range tr.Nodes {
		if tr.Nodes[i].Subtree >= 0 {
			want += tr.Nodes[i].Cost
		}
	}
	var got float64
	for _, l := range m.InitialLoad {
		got += l
	}
	if math.Abs(got-want) > 1e-6*math.Max(want, 1) {
		t.Fatalf("initial loads %v != subtree cost %v", got, want)
	}
}

func TestSubtreeLayerCoversAllLeaves(t *testing.T) {
	p, _ := sparse.Grid3D(7, 7, 7, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	m, err := Map(tr, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Each leaf must be inside some subtree (the layer is a complete
	// horizontal cut).
	for _, l := range tr.Leaves() {
		if tr.Nodes[l].Subtree < 0 {
			t.Fatalf("leaf %d not covered by the Geist-Ng layer", l)
		}
	}
	if len(m.SubtreeRoots) < 4 {
		t.Fatalf("only %d subtrees for 4 procs", len(m.SubtreeRoots))
	}
	// A node inside a subtree cannot be Type 2.
	for i := range tr.Nodes {
		if tr.Nodes[i].Subtree >= 0 && tr.Nodes[i].Type != tree.Type1 {
			t.Fatal("subtree node classified parallel")
		}
	}
}

func TestDecisionsGrowWithProcs(t *testing.T) {
	// Table 3 behaviour: the number of dynamic decisions roughly doubles
	// from 32 to 64 processors (lower parallelization threshold).
	p, _ := sparse.Grid3D(14, 14, 14, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	count := func(np int) int {
		tr := tree.Build(a) // fresh tree: Map mutates node types
		m, err := Map(tr, DefaultConfig(np))
		if err != nil {
			t.Fatal(err)
		}
		return m.Decisions()
	}
	d8, d16, d32 := count(8), count(16), count(32)
	if d8 <= 0 {
		t.Fatal("no dynamic decisions at 8 procs")
	}
	if !(d8 <= d16 && d16 <= d32) {
		t.Fatalf("decisions not monotone in procs: %d, %d, %d", d8, d16, d32)
	}
	if d32 < d8*2 {
		t.Fatalf("decisions should grow substantially: 8p=%d 32p=%d", d8, d32)
	}
}

func TestInitialLoadBalanced(t *testing.T) {
	p, _ := sparse.Grid3D(10, 10, 10, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	m, err := Map(tr, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var max, sum float64
	for _, l := range m.InitialLoad {
		sum += l
		if l > max {
			max = l
		}
	}
	avg := sum / 8
	if avg == 0 {
		t.Skip("degenerate: no subtree work")
	}
	if max > 3*avg {
		t.Fatalf("LPT imbalance too large: max %v avg %v", max, avg)
	}
}

func TestType3RootOnLargeProblem(t *testing.T) {
	p, _ := sparse.Grid3D(12, 12, 12, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	cfg := DefaultConfig(8)
	cfg.Type3MinFront = 32 // force
	if _, err := Map(tr, cfg); err != nil {
		t.Fatal(err)
	}
	root := tr.Roots[len(tr.Roots)-1]
	for _, r := range tr.Roots {
		if tr.Nodes[r].SubtreeCost > tr.Nodes[root].SubtreeCost {
			root = r
		}
	}
	if tr.Nodes[root].Nfront >= 32 && tr.Nodes[root].Type != tree.Type3 {
		t.Fatalf("large root not Type 3 (front %d, type %v)", tr.Nodes[root].Nfront, tr.Nodes[root].Type)
	}
}

func TestMapSingleProc(t *testing.T) {
	p, _ := sparse.Grid2D(6, 6, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(a)
	m, err := Map(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumType2 != 0 {
		t.Fatal("single proc cannot have Type 2 nodes")
	}
	for _, mp := range m.Master {
		if mp != 0 {
			t.Fatal("single proc master must be 0")
		}
	}
}

func TestMapErrors(t *testing.T) {
	if _, err := Map(&tree.Tree{}, DefaultConfig(4)); err == nil {
		t.Fatal("empty tree accepted")
	}
	p, _ := sparse.Grid2D(4, 4, 1, sparse.Star, sparse.Sym)
	a, _ := symbolic.Analyze(p, symbolic.DefaultOptions())
	tr := tree.Build(a)
	if _, err := Map(tr, Config{NProcs: 0}); err == nil {
		t.Fatal("zero procs accepted")
	}
}

func TestRegistryProblemsMapAcrossProcCounts(t *testing.T) {
	for _, name := range []string{"BMWCRA_1", "TWOTONE"} {
		pr, err := sparse.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pat, _ := pr.Generate(0.015, 3)
		a, err := symbolic.Analyze(pat, symbolic.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, np := range []int{2, 8, 32} {
			tr := tree.Build(a)
			m, err := Map(tr, DefaultConfig(np))
			if err != nil {
				t.Fatalf("%s @%d: %v", name, np, err)
			}
			for i := range tr.Nodes {
				if m.Master[i] < 0 || int(m.Master[i]) >= np {
					t.Fatalf("%s @%d: master out of range", name, np)
				}
			}
		}
	}
}

func TestCandidatesForType2Nodes(t *testing.T) {
	p, _ := sparse.Grid3D(10, 10, 10, 1, sparse.Star, sparse.Sym)
	a, err := symbolic.Analyze(p, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Split(tree.Build(a), tree.DefaultSplit())
	m, err := Map(tr, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := range tr.Nodes {
		if tr.Nodes[i].Type != tree.Type2 {
			if m.Candidates[i] != nil {
				t.Fatalf("non-Type2 node %d has candidates", i)
			}
			continue
		}
		found++
		c := m.Candidates[i]
		if len(c) < 7 {
			t.Fatalf("node %d has only %d candidates", i, len(c))
		}
		seen := map[int32]bool{}
		for _, p := range c {
			if p < 0 || p >= 16 {
				t.Fatalf("candidate %d out of range", p)
			}
			if p == m.Master[i] {
				t.Fatal("master listed among its own candidates")
			}
			if seen[p] {
				t.Fatal("duplicate candidate")
			}
			seen[p] = true
		}
	}
	if found == 0 {
		t.Fatal("no Type 2 nodes in test tree")
	}
}

func TestCandidatesAroundWrapsRing(t *testing.T) {
	// Narrow span near the end of the rank range must wrap around.
	c := candidatesAround(14, 16, 16, 15)
	seen := map[int32]bool{}
	for _, p := range c {
		if p < 0 || p >= 16 || p == 15 {
			t.Fatalf("bad candidate %d", p)
		}
		seen[p] = true
	}
	if len(c) < 7 {
		t.Fatalf("widening failed: %v", c)
	}
	// Full-width span stays within range and excludes the master.
	c2 := candidatesAround(0, 4, 4, 2)
	if len(c2) != 3 {
		t.Fatalf("full-width candidates = %v", c2)
	}
}
