package ordering

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/sparse"
)

// fillOf simulates symbolic elimination in the given order and returns the
// number of factor entries (including diagonal). Brute force, for tests
// only: O(n · deg²).
func fillOf(g *sparse.Graph, p Perm) int64 {
	n := g.N
	pos := p.Inverse()
	// adj sets in elimination order, as maps (small tests only).
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[pos[v]] = map[int32]bool{}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.AdjOf(v) {
			adj[pos[v]][pos[u]] = true
		}
	}
	var fill int64
	for k := 0; k < n; k++ {
		var higher []int32
		for u := range adj[k] {
			if u > int32(k) {
				higher = append(higher, u)
			}
		}
		fill += int64(len(higher)) + 1
		for i, u := range higher {
			for _, w := range higher[i+1:] {
				adj[u][w] = true
				adj[w][u] = true
			}
		}
	}
	return fill
}

// exactMinDegree is a reference O(n²·deg) implementation used to sanity
// check the quotient-graph code's quality on small problems.
func exactMinDegree(g *sparse.Graph) Perm {
	n := g.N
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int32]bool{}
		for _, u := range g.AdjOf(v) {
			adj[v][u] = true
		}
	}
	eliminated := make([]bool, n)
	order := make(Perm, 0, n)
	for k := 0; k < n; k++ {
		best, bestDeg := int32(-1), n+1
		for v := 0; v < n; v++ {
			if !eliminated[v] && len(adj[v]) < bestDeg {
				best, bestDeg = int32(v), len(adj[v])
			}
		}
		eliminated[best] = true
		order = append(order, best)
		var nbrs []int32
		for u := range adj[best] {
			if !eliminated[u] {
				nbrs = append(nbrs, u)
			}
		}
		for _, u := range nbrs {
			delete(adj[u], best)
			for _, w := range nbrs {
				if w != u {
					adj[u][w] = true
				}
			}
		}
	}
	return order
}

func TestPermValidateAndInverse(t *testing.T) {
	p := Perm{2, 0, 1}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	if inv[2] != 0 || inv[0] != 1 || inv[1] != 2 {
		t.Fatalf("inverse = %v", inv)
	}
	if err := (Perm{0, 0, 1}).Validate(3); err == nil {
		t.Fatal("duplicate not caught")
	}
	if err := (Perm{0, 5, 1}).Validate(3); err == nil {
		t.Fatal("out of range not caught")
	}
}

func TestMinimumDegreeIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8, degRaw uint8) bool {
		n := int(nRaw)%300 + 5
		deg := int(degRaw)%6 + 1
		p := sparse.RandomSym(n, deg, 0.6, sim.NewRNG(seed), sparse.Sym)
		g := p.ToGraph()
		return MinimumDegree(g).Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeQuality(t *testing.T) {
	// MD should beat natural order substantially on a 2D grid, and be in
	// the same ballpark as the exact reference.
	_, g := sparse.Grid2D(14, 14, 1, sparse.Star, sparse.Sym)
	natural := fillOf(g, Identity(g.N))
	md := fillOf(g, MinimumDegree(g))
	exact := fillOf(g, exactMinDegree(g))
	if md >= natural {
		t.Fatalf("MD fill %d not better than natural %d", md, natural)
	}
	if float64(md) > 1.6*float64(exact) {
		t.Fatalf("quotient MD fill %d much worse than exact MD %d", md, exact)
	}
}

func TestMinimumDegreeHandlesDenseRows(t *testing.T) {
	// A power-law matrix with hub rows must still order quickly and
	// validly (dense postponement).
	p := sparse.PowerLawSym(800, 4, 6, 300, sim.NewRNG(5))
	g := p.ToGraph()
	perm := MinimumDegree(g)
	if err := perm.Validate(g.N); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeEmptyAndTiny(t *testing.T) {
	empty := &sparse.Graph{N: 0, Ptr: []int32{0}}
	if len(MinimumDegree(empty)) != 0 {
		t.Fatal("empty graph")
	}
	g := &sparse.Graph{N: 3, Ptr: []int32{0, 0, 0, 0}} // no edges
	if err := MinimumDegree(g).Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionGeometric(t *testing.T) {
	_, g := sparse.Grid3D(8, 8, 8, 1, sparse.Star, sparse.Sym)
	perm := NestedDissection(g)
	if err := perm.Validate(g.N); err != nil {
		t.Fatal(err)
	}
	nd := fillOf(g, perm)
	natural := fillOf(g, Identity(g.N))
	if nd >= natural {
		t.Fatalf("ND fill %d not better than natural %d on 3D grid", nd, natural)
	}
}

func TestNestedDissectionWithoutCoords(t *testing.T) {
	p := sparse.RandomSym(400, 4, 0.9, sim.NewRNG(1), sparse.Sym)
	g := p.ToGraph() // no coords: level-structure fallback
	perm := NestedDissection(g)
	if err := perm.Validate(g.N); err != nil {
		t.Fatal(err)
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A randomly permuted banded matrix: RCM should recover a small
	// bandwidth.
	p := sparse.Banded(200, 2, sparse.Sym)
	g := p.ToGraph()
	rng := sim.NewRNG(7)
	shuffle := Perm(make([]int32, g.N))
	for i, v := range rng.Perm(g.N) {
		shuffle[i] = int32(v)
	}
	gp := PermuteGraph(g, shuffle)
	perm := RCM(gp)
	if err := perm.Validate(gp.N); err != nil {
		t.Fatal(err)
	}
	bw := func(g *sparse.Graph, p Perm) int32 {
		inv := p.Inverse()
		var b int32
		for v := 0; v < g.N; v++ {
			for _, u := range g.AdjOf(v) {
				d := inv[v] - inv[u]
				if d < 0 {
					d = -d
				}
				if d > b {
					b = d
				}
			}
		}
		return b
	}
	if got := bw(gp, perm); got > 10 {
		t.Fatalf("RCM bandwidth = %d, want small", got)
	}
}

func TestPermuteGraphPreservesStructure(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 5
		pat := sparse.RandomSym(n, 3, 0.5, sim.NewRNG(seed), sparse.Sym)
		g := pat.ToGraph()
		rng := sim.NewRNG(seed + 1)
		perm := Perm(make([]int32, n))
		for i, v := range rng.Perm(n) {
			perm[i] = int32(v)
		}
		gp := PermuteGraph(g, perm)
		if gp.N != n || len(gp.Adj) != len(g.Adj) {
			return false
		}
		// Edge (u,v) in g ⇔ (inv[u],inv[v]) in gp.
		inv := perm.Inverse()
		for v := 0; v < n; v++ {
			for _, u := range g.AdjOf(v) {
				found := false
				for _, x := range gp.AdjOf(int(inv[v])) {
					if x == inv[u] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderDispatcher(t *testing.T) {
	_, g := sparse.Grid2D(6, 6, 1, sparse.Star, sparse.Sym)
	for _, m := range []Method{MethodAuto, MethodMinDeg, MethodND, MethodRCM, MethodNatural} {
		p, err := Order(g, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := p.Validate(g.N); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if _, err := Order(g, Method("bogus")); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMinimumDegreeDeterministic(t *testing.T) {
	p := sparse.RandomSym(300, 4, 0.5, sim.NewRNG(2), sparse.Sym)
	g := p.ToGraph()
	a := MinimumDegree(g)
	b := MinimumDegree(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MinimumDegree is nondeterministic")
		}
	}
}
