package net

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestByteConstantsMatchCodec pins every core.Bytes* constant to the
// exact frame-body length BinaryCodec emits for that kind. The
// constants are what the sim and live runtimes charge for bandwidth
// accounting; if the codec layout changes without the constants (or
// vice versa), the accounting silently drifts — this table is the
// one place that drift can hide.
func TestByteConstantsMatchCodec(t *testing.T) {
	codec := BinaryCodec{}
	load := core.Load{1.5, -2.25}
	cases := []struct {
		kind    int
		payload any
		want    float64
	}{
		{core.KindUpdate, core.UpdatePayload{Load: load}, core.BytesUpdate},
		{core.KindNoMoreMaster, nil, core.BytesNoMoreMaster},
		{core.KindStartSnp, core.StartSnpPayload{Req: 7}, core.BytesStartSnp},
		{core.KindSnp, core.SnpPayload{Req: 7, Load: load}, core.BytesSnp},
		{core.KindEndSnp, nil, core.BytesEndSnp},
		{core.KindMasterToSlave, core.MasterToSlavePayload{Delta: load}, core.BytesMasterToSlave},
		{core.KindGossip, core.GossipPayload{Origin: 4, Seq: 9, TTL: 3, Load: load}, core.BytesGossip},
	}
	for _, tc := range cases {
		m, err := StateMessage(2, tc.kind, tc.payload)
		if err != nil {
			t.Fatalf("%s: StateMessage: %v", core.KindName(tc.kind), err)
		}
		body, err := codec.Encode(nil, m)
		if err != nil {
			t.Fatalf("%s: Encode: %v", core.KindName(tc.kind), err)
		}
		if float64(len(body)) != tc.want {
			t.Errorf("%s: encoded %d bytes, core constant says %g",
				core.KindName(tc.kind), len(body), tc.want)
		}
	}
}

// TestMasterToAllBytesMatchesCodec checks the variable-size kind for
// several assignment counts.
func TestMasterToAllBytesMatchesCodec(t *testing.T) {
	codec := BinaryCodec{}
	for k := 0; k <= 5; k++ {
		asgs := make([]core.Assignment, k)
		for i := range asgs {
			asgs[i] = core.Assignment{Proc: int32(i), Delta: core.Load{float64(i), 1}}
		}
		m, err := StateMessage(0, core.KindMasterToAll, core.MasterToAllPayload{Assignments: asgs})
		if err != nil {
			t.Fatal(err)
		}
		body, err := codec.Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if want := core.MasterToAllBytes(k); float64(len(body)) != want {
			t.Errorf("master_to_all with %d assignments: encoded %d bytes, MasterToAllBytes says %g",
				k, len(body), want)
		}
	}
}

// TestDiffuseBytesMatchesCodec checks the other variable-size kind: the
// diffusion view vector grows with the cluster size.
func TestDiffuseBytesMatchesCodec(t *testing.T) {
	codec := BinaryCodec{}
	for n := 1; n <= 6; n++ {
		loads := make([]core.Load, n)
		for i := range loads {
			loads[i] = core.Load{float64(i), -1}
		}
		m, err := StateMessage(0, core.KindDiffuse, core.DiffusePayload{Loads: loads})
		if err != nil {
			t.Fatal(err)
		}
		body, err := codec.Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if want := core.DiffuseBytes(n); float64(len(body)) != want {
			t.Errorf("diffuse with %d entries: encoded %d bytes, DiffuseBytes says %g",
				n, len(body), want)
		}
	}
}

// TestWorkItemBytesMatchesCodec pins the data-channel work item size the
// wireless runtimes charge.
func TestWorkItemBytesMatchesCodec(t *testing.T) {
	codec := BinaryCodec{}
	m := Message{Type: TypeWork, From: 3, Load: core.Load{4, 5}, Spin: int64(time.Millisecond)}
	body, err := codec.Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(body)) != core.BytesWorkItem {
		t.Errorf("work item: encoded %d bytes, core.BytesWorkItem says %g", len(body), core.BytesWorkItem)
	}
}

// TestNetCountersMatchCodecExactly runs real scenarios over in-process
// TCP and asserts, for every node and every message kind, that the
// bytes the writer goroutines counted off the actual encoded frames
// equal the bytes the core constants predicted at Send time — the
// acceptance check that the net runtime's byte totals match codec frame
// sizes exactly, per kind and in total, not just on average.
func TestNetCountersMatchCodecExactly(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		for _, scenario := range []string{"quickstart", "burst"} {
			t.Run(scenario+"/"+string(mech), func(t *testing.T) {
				w, err := workload.Get(scenario)
				if err != nil {
					t.Fatal(err)
				}
				p := workload.DefaultParams()
				p.Procs, p.Masters, p.Decisions, p.Slaves = 5, 2, 3, 2
				p.Spin = 200 * time.Microsecond
				progs, err := w.Programs(p)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.Config{Threshold: core.Load{core.Workload: 5}, NoMoreMasterOpt: true}
				cl, err := NewCluster(len(progs), mech, cfg, ProgramOptions(Options{}, progs))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := workload.DriveCluster(cl, mech, progs, workload.DriveOptions{Spin: p.Spin}); err != nil {
					cl.Stop()
					t.Fatal(err)
				}
				// Stop flushes every writer queue; only then are the
				// wire tallies final.
				cl.Stop()
				for r := 0; r < cl.N(); r++ {
					got := cl.Node(r).Counters()
					want := cl.Node(r).EstimatedCounters()
					if got.StateMsgs == 0 {
						t.Fatalf("rank %d sent no state messages — vacuous", r)
					}
					if got.StateMsgs != want.StateMsgs || got.StateBytes != want.StateBytes {
						t.Errorf("rank %d: wire state (%d msgs, %g B) != estimate (%d msgs, %g B)",
							r, got.StateMsgs, got.StateBytes, want.StateMsgs, want.StateBytes)
					}
					if got.DataMsgs != want.DataMsgs || got.DataBytes != want.DataBytes {
						t.Errorf("rank %d: wire data (%d msgs, %g B) != estimate (%d msgs, %g B)",
							r, got.DataMsgs, got.DataBytes, want.DataMsgs, want.DataBytes)
					}
					for kind := core.KindUpdate; kind <= core.KindMasterToSlave; kind++ {
						g, e := got.Kind(kind), want.Kind(kind)
						if g != e {
							t.Errorf("rank %d %s: wire %+v != estimate %+v",
								r, core.KindName(kind), g, e)
						}
					}
				}
			})
		}
	}
}
