package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestStreamHistBasics(t *testing.T) {
	var h StreamHist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("zero-value hist not empty: %+v", h.Summary())
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %g/%g, want 1/100", h.Min(), h.Max())
	}
	if got, want := h.Sum(), 5050.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Quantiles within one bucket width (12.5% relative) of exact.
	for _, tc := range []struct{ p, want float64 }{{0.5, 50.5}, {0.95, 95.05}, {0.99, 99.01}} {
		got := h.Quantile(tc.p)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 1.0/histSub {
			t.Errorf("q(%g) = %g, want ≈%g (rel err %.3f)", tc.p, got, tc.want, rel)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("q(0)=%g q(1)=%g, want exact extremes 1/100", h.Quantile(0), h.Quantile(1))
	}
}

func TestStreamHistNonPositive(t *testing.T) {
	var h StreamHist
	h.Add(0)
	h.Add(-3)
	h.Add(math.NaN())
	h.Add(2)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if q := h.Quantile(0.25); q != h.Min() {
		t.Errorf("low quantile over underflow bucket = %g, want min %g", q, h.Min())
	}
}

func TestStreamHistQuantileVsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h StreamHist
	var xs []float64
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~9 orders of magnitude: the regime the
		// log-linear buckets are built for.
		v := math.Exp(rng.Float64()*20 - 10)
		h.Add(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99} {
		exact := Percentile(xs, p)
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 1.0/histSub+0.01 {
			t.Errorf("q(%g) = %g, exact %g (rel err %.3f > bucket width)", p, got, exact, rel)
		}
	}
}

// TestStreamHistMergeAssociativity is the satellite property test:
// (a⊕b)⊕c and a⊕(b⊕c) must agree exactly on bucket counts, count,
// min, max (and hence every quantile), with sums equal to float
// tolerance. Randomized over many shard shapes.
func TestStreamHistMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*StreamHist, 3)
		var all []float64
		for i := range parts {
			parts[i] = new(StreamHist)
			n := rng.Intn(200) // some shards may be empty
			for j := 0; j < n; j++ {
				v := math.Exp(rng.NormFloat64() * 3)
				if rng.Intn(10) == 0 {
					v = 0 // exercise the underflow bucket
				}
				parts[i].Add(v)
				all = append(all, v)
			}
		}
		clone := func(h *StreamHist) *StreamHist { c := *h; return &c }

		left := clone(parts[0]) // (a⊕b)⊕c
		left.Merge(parts[1])
		left.Merge(parts[2])

		bc := clone(parts[1]) // a⊕(b⊕c)
		bc.Merge(parts[2])
		right := clone(parts[0])
		right.Merge(bc)

		if !left.Equal(right) {
			t.Fatalf("trial %d: merge not associative:\n left %+v\nright %+v", trial, left.Summary(), right.Summary())
		}
		if math.Abs(left.Sum()-right.Sum()) > 1e-9*(1+math.Abs(left.Sum())) {
			t.Fatalf("trial %d: sums diverge: %g vs %g", trial, left.Sum(), right.Sum())
		}
		// Commutativity ride-along: c⊕b⊕a matches too.
		rev := clone(parts[2])
		rev.Merge(parts[1])
		rev.Merge(parts[0])
		if !left.Equal(rev) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		// Merged hist equals the hist of the concatenated stream.
		var whole StreamHist
		for _, v := range all {
			whole.Add(v)
		}
		if !left.Equal(&whole) {
			t.Fatalf("trial %d: merged shards disagree with unsharded stream", trial)
		}
		if left.Count() != int64(len(all)) {
			t.Fatalf("trial %d: merged count %d, want %d", trial, left.Count(), len(all))
		}
	}
}

func TestStreamHistSummary(t *testing.T) {
	var h StreamHist
	for i := 0; i < 1000; i++ {
		h.Add(1.0) // all mass in one bucket
	}
	s := h.Summary()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1 {
		t.Fatalf("summary %+v", s)
	}
	// Degenerate distribution: every quantile is exactly the value.
	if s.P50 != 1 || s.P95 != 1 || s.P99 != 1 {
		t.Fatalf("degenerate quantiles drifted: %+v", s)
	}
	if math.Abs(s.Mean-1) > 1e-12 {
		t.Fatalf("mean = %g, want 1", s.Mean)
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64()*40 - 20)
		b := bucketIndex(v)
		lo, hi := bucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %g landed in bucket %d = [%g, %g)", v, b, lo, hi)
		}
	}
	// Clamps.
	if bucketIndex(math.MaxFloat64) != histBuckets-1 {
		t.Errorf("huge value should clamp to top bucket")
	}
	if bucketIndex(1e-300) != 0 {
		t.Errorf("tiny value should clamp to underflow bucket")
	}
}
