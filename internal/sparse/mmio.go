package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteMatrixMarket writes the pattern in MatrixMarket "pattern" format
// (coordinate, pattern, general|symmetric), so generated analogues can be
// inspected with standard sparse-matrix tooling.
func WriteMatrixMarket(w io.Writer, p *Pattern) error {
	bw := bufio.NewWriter(w)
	sym := "general"
	if p.Kind == Sym {
		sym = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern %s\n", sym); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", p.N, p.N, p.Stored()); err != nil {
		return err
	}
	for j := 0; j < p.N; j++ {
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			if _, err := fmt.Fprintf(bw, "%d %d\n", p.RowIdx[q]+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a coordinate MatrixMarket file. Numerical values,
// if present, are ignored (only the pattern is kept).
func ReadMatrixMarket(r io.Reader) (*Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	kind := Unsym
	for _, f := range header[3:] {
		if f == "symmetric" || f == "skew-symmetric" || f == "hermitian" {
			kind = Sym
		}
	}
	// Skip comments, read size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if n != m {
		return nil, fmt.Errorf("sparse: matrix is %dx%d, want square", n, m)
	}
	b := NewBuilder(n, kind)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		var i, j int
		if _, err := fmt.Sscan(fields[0], &i); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscan(fields[1], &j); err != nil {
			return nil, err
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range", i, j)
		}
		b.Add(i-1, j-1)
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: read %d entries, header declared %d", read, nnz)
	}
	return b.Build(), nil
}
