package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/stats"
)

// set1Names returns the Table 1 matrices in table order.
func set1Names() []string {
	var names []string
	for _, pr := range sparse.Set1() {
		names = append(names, pr.Name)
	}
	sort.Strings(names)
	return names
}

// set2Names returns the Table 2 matrices.
func set2Names() []string {
	var names []string
	for _, pr := range sparse.Set2() {
		names = append(names, pr.Name)
	}
	sort.Strings(names)
	return names
}

// ---- Tables 1 & 2 -------------------------------------------------------

// MatrixRow describes one test problem: the paper's matrix and its
// synthetic analogue at the configured scale.
type MatrixRow struct {
	Name       string
	PaperOrder int
	PaperNNZ   int
	Kind       string
	GenOrder   int
	GenNNZ     int
	Desc       string
	Set        int
}

// Matrices regenerates Tables 1-2: the problem sets, paper vs generated.
func (l *Lab) Matrices(scaleProcs int) ([]MatrixRow, error) {
	var rows []MatrixRow
	for _, pr := range sparse.Registry {
		p, _ := pr.Generate(l.Cfg.scaleFor(scaleProcs), l.Cfg.Seed)
		rows = append(rows, MatrixRow{
			Name: pr.Name, PaperOrder: pr.PaperOrder, PaperNNZ: pr.PaperNNZ,
			Kind: pr.Kind.String(), GenOrder: p.N, GenNNZ: p.NNZ(),
			Desc: pr.Desc, Set: pr.Set,
		})
	}
	return rows, nil
}

// ---- Table 3 ------------------------------------------------------------

// DecisionRow is one Table 3 cell.
type DecisionRow struct {
	Name     string
	Procs    int
	Measured int
	Paper    int // 0 when the paper has no value for this cell
}

// Table3 regenerates the dynamic-decision counts.
func (l *Lab) Table3() ([]DecisionRow, error) {
	var rows []DecisionRow
	add := func(names []string, procs []int) error {
		for _, name := range names {
			for _, np := range procs {
				m, err := l.Mapping(name, np)
				if err != nil {
					return err
				}
				rows = append(rows, DecisionRow{
					Name: name, Procs: np,
					Measured: m.Decisions(),
					Paper:    PaperTable3[name][np],
				})
			}
		}
		return nil
	}
	if err := add(set1Names(), []int{32, 64}); err != nil {
		return nil, err
	}
	if err := add(set2Names(), []int{64, 128}); err != nil {
		return nil, err
	}
	return rows, nil
}

// ---- Table 4 ------------------------------------------------------------

// Table4Row is one Table 4 row: peak active memory (millions of entries)
// under the memory-based strategy, for the three mechanisms. Imbalance is
// the max/mean factor of the per-process peaks (1.0 = perfectly even), a
// diagnostic the paper discusses qualitatively.
type Table4Row struct {
	Name      string
	Procs     int
	Measured  PeakRow
	Paper     PeakRow
	Imbalance PeakRow
}

// Table4 regenerates the memory-based-strategy comparison.
func (l *Lab) Table4(procs []int) ([]Table4Row, error) {
	if len(procs) == 0 {
		procs = []int{32, 64}
	}
	var rows []Table4Row
	for _, np := range procs {
		for _, name := range set1Names() {
			row := Table4Row{Name: name, Procs: np, Paper: PaperTable4[np][name]}
			for _, mech := range core.Mechanisms() {
				res, err := l.RunOne(name, np, mech, sched.Memory(), nil)
				if err != nil {
					return nil, err
				}
				v := res.MaxPeakMem / 1e6
				imb := stats.Imbalance(res.PeakMem)
				switch mech {
				case core.MechIncrements:
					row.Measured.Increments = v
					row.Imbalance.Increments = imb
				case core.MechSnapshot:
					row.Measured.Snapshot = v
					row.Imbalance.Snapshot = imb
				case core.MechNaive:
					row.Measured.Naive = v
					row.Imbalance.Naive = imb
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Tables 5, 6 and 7 ---------------------------------------------------

// Table567Row carries one matrix/procs cell of Tables 5-7: the same runs
// produce the factorization time (Table 5), the mechanism message counts
// (Table 6) and — re-run with the threaded model — Table 7.
type Table567Row struct {
	Name  string
	Procs int
	// Single-threaded (Tables 5-6).
	Time      TimeRow
	Msgs      MsgRow
	PaperTime TimeRow
	PaperMsgs MsgRow
	// Threaded (Table 7).
	ThreadedTime      TimeRow
	PaperThreadedTime TimeRow
	// Snapshot diagnostics (§4.5 discussion).
	SnapshotOpsTime         float64 // single-threaded, seconds
	ThreadedSnapshotOpsTime float64
	MaxConcurrentSnapshots  int
}

// Table567 regenerates the workload-strategy comparison on the large set.
func (l *Lab) Table567(procs []int, threaded bool) ([]Table567Row, error) {
	if len(procs) == 0 {
		procs = []int{64, 128}
	}
	var rows []Table567Row
	for _, np := range procs {
		for _, name := range set2Names() {
			row := Table567Row{
				Name: name, Procs: np,
				PaperTime:         PaperTable5[np][name],
				PaperMsgs:         PaperTable6[np][name],
				PaperThreadedTime: PaperTable7[np][name],
			}
			for _, mech := range []core.Mech{core.MechIncrements, core.MechSnapshot} {
				res, err := l.RunOne(name, np, mech, sched.Workload(), nil)
				if err != nil {
					return nil, err
				}
				switch mech {
				case core.MechIncrements:
					row.Time.Increments = res.Time
					row.Msgs.Increments = res.StateMsgs
				case core.MechSnapshot:
					row.Time.Snapshot = res.Time
					row.Msgs.Snapshot = res.StateMsgs
					row.SnapshotOpsTime = res.SnapshotTime
					row.MaxConcurrentSnapshots = res.MaxConcurrentSnapshots
				}
				if threaded {
					tres, err := l.RunOne(name, np, mech, sched.Workload(), func(p *solver.Params) {
						p.Threaded = true
					})
					if err != nil {
						return nil, err
					}
					switch mech {
					case core.MechIncrements:
						row.ThreadedTime.Increments = tres.Time
					case core.MechSnapshot:
						row.ThreadedTime.Snapshot = tres.Time
						row.ThreadedSnapshotOpsTime = tres.SnapshotTime
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- formatting ----------------------------------------------------------

// WriteMatrices prints Tables 1-2.
func WriteMatrices(w io.Writer, rows []MatrixRow) {
	fmt.Fprintf(w, "%-13s %-4s %10s %12s | %10s %12s  %s\n",
		"Matrix", "Type", "paper n", "paper nnz", "gen n", "gen nnz", "Description")
	set := 0
	for _, r := range rows {
		if r.Set != set {
			set = r.Set
			fmt.Fprintf(w, "-- Table %d problems --\n", set)
		}
		fmt.Fprintf(w, "%-13s %-4s %10d %12d | %10d %12d  %s\n",
			r.Name, r.Kind, r.PaperOrder, r.PaperNNZ, r.GenOrder, r.GenNNZ, r.Desc)
	}
}

// WriteTable3 prints the decision counts.
func WriteTable3(w io.Writer, rows []DecisionRow) {
	fmt.Fprintf(w, "%-13s %6s %10s %10s\n", "Matrix", "procs", "measured", "paper")
	for _, r := range rows {
		paper := "-"
		if r.Paper > 0 {
			paper = fmt.Sprintf("%d", r.Paper)
		}
		fmt.Fprintf(w, "%-13s %6d %10d %10s\n", r.Name, r.Procs, r.Measured, paper)
	}
}

// WriteTable4 prints the peak-memory comparison.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "%-13s %5s | %29s | %29s\n", "", "", "measured (10^6 entries)", "paper (10^6 entries)")
	fmt.Fprintf(w, "%-13s %5s | %9s %9s %9s | %9s %9s %9s\n",
		"Matrix", "procs", "incr", "snapshot", "naive", "incr", "snapshot", "naive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d | %9.3f %9.3f %9.3f | %9.2f %9.2f %9.2f\n",
			r.Name, r.Procs,
			r.Measured.Increments, r.Measured.Snapshot, r.Measured.Naive,
			r.Paper.Increments, r.Paper.Snapshot, r.Paper.Naive)
	}
}

// WriteTable5 prints factorization times.
func WriteTable5(w io.Writer, rows []Table567Row) {
	fmt.Fprintf(w, "%-13s %5s | %19s | %19s | %s\n", "", "", "measured time (s)", "paper time (s)", "ratio snap/incr")
	fmt.Fprintf(w, "%-13s %5s | %9s %9s | %9s %9s | %7s %7s\n",
		"Matrix", "procs", "incr", "snapshot", "incr", "snapshot", "meas", "paper")
	for _, r := range rows {
		mr := r.Time.Snapshot / r.Time.Increments
		pr := r.PaperTime.Snapshot / r.PaperTime.Increments
		fmt.Fprintf(w, "%-13s %5d | %9.2f %9.2f | %9.2f %9.2f | %7.2f %7.2f\n",
			r.Name, r.Procs, r.Time.Increments, r.Time.Snapshot,
			r.PaperTime.Increments, r.PaperTime.Snapshot, mr, pr)
	}
}

// WriteTable6 prints mechanism message counts.
func WriteTable6(w io.Writer, rows []Table567Row) {
	fmt.Fprintf(w, "%-13s %5s | %19s | %21s | %s\n", "", "", "measured msgs", "paper msgs", "ratio incr/snap")
	fmt.Fprintf(w, "%-13s %5s | %9s %9s | %10s %10s | %7s %7s\n",
		"Matrix", "procs", "incr", "snapshot", "incr", "snapshot", "meas", "paper")
	for _, r := range rows {
		mr := float64(r.Msgs.Increments) / float64(r.Msgs.Snapshot)
		pr := float64(r.PaperMsgs.Increments) / float64(r.PaperMsgs.Snapshot)
		fmt.Fprintf(w, "%-13s %5d | %9d %9d | %10d %10d | %7.1f %7.1f\n",
			r.Name, r.Procs, r.Msgs.Increments, r.Msgs.Snapshot,
			r.PaperMsgs.Increments, r.PaperMsgs.Snapshot, mr, pr)
	}
}

// WriteTable7 prints the threaded comparison.
func WriteTable7(w io.Writer, rows []Table567Row) {
	fmt.Fprintf(w, "%-13s %5s | %19s | %19s | %s\n", "", "", "measured time (s)", "paper time (s)", "snapshot-ops time (s)")
	fmt.Fprintf(w, "%-13s %5s | %9s %9s | %9s %9s | %10s %10s\n",
		"Matrix", "procs", "incr", "snapshot", "incr", "snapshot", "1-thread", "threaded")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %5d | %9.2f %9.2f | %9.2f %9.2f | %10.2f %10.2f\n",
			r.Name, r.Procs, r.ThreadedTime.Increments, r.ThreadedTime.Snapshot,
			r.PaperThreadedTime.Increments, r.PaperThreadedTime.Snapshot,
			r.SnapshotOpsTime, r.ThreadedSnapshotOpsTime)
	}
}
