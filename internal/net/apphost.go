package net

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// This file is the net side of the application port (workload.App /
// workload.AppHost): hosting a real distributed application — the
// multifrontal solver — over the same TCP mesh, codec and peer loops
// the synthetic workloads use. Each rank is one Node whose main loop
// runs the application's Algorithm 1 instead of the built-in workload
// loop; state messages, application data messages (TypeData frames
// carrying workload.DataMsg) and termination-detection control frames
// (TypeCtrl carrying termdet.Ctrl) genuinely travel the sockets.
//
// Two deployments share this code:
//
//   - AppRunner hosts all n ranks in one process (one mesh of localhost
//     nodes, application callbacks serialized by the binding's lock);
//   - AppNode hosts a single rank in a forked `loadex node` process;
//     the application instance in each process then executes exactly
//     one local rank, and every cross-rank effect travels as a message.
//
// Quiescence is detector-driven in both: each rank runs one
// termdet.Protocol, control frames bypass the application's Blocked
// gating, and the run ends when the detector announces global
// termination — there is no host-side outstanding-work counting.

// appMsg is one inbound application data-channel message.
type appMsg struct {
	from int
	m    workload.DataMsg
}

// appCompute is one deferred compute interval.
type appCompute struct {
	seconds float64
	done    func()
}

// appBinding is the hosting state shared by every local node of one
// application cluster (all n in-process, exactly one under fork).
type appBinding struct {
	app   workload.App
	opts  workload.AppRunOptions
	scale float64

	// mu serializes every application callback across local ranks.
	mu sync.Mutex
	// ready is closed once Attach ran; node loops park on it so the
	// application never sees a callback before its host is wired.
	ready chan struct{}

	// doneCh closes when a local rank's detector learns about global
	// termination (detected on rank 0, announced by CtrlTerm
	// elsewhere).
	doneCh   chan struct{}
	doneOnce sync.Once

	// lastDoneNS / termNS are wall-clock UnixNano stamps of the latest
	// local compute completion and the detector's first CtrlTerm
	// broadcast. Under fork only the process hosting rank 0 observes
	// the broadcast, so other processes report zero (unobserved).
	lastDoneNS atomic.Int64
	termNS     atomic.Int64
	// detectLatNS is the detection latency, latched at the moment the
	// CtrlTerm CAS succeeds — the same gate that orders the term
	// broadcast. Deriving it later from the two stamps was racy: a
	// late compute completion during drain could overwrite lastDoneNS
	// past termNS and silently zero the metric.
	detectLatNS atomic.Int64

	// startNS is the host clock epoch (UnixNano, set before the app
	// attaches); span timestamps in app mode use it so they share the
	// compute events' time base.
	startNS atomic.Int64
}

// detectLatency returns the latency latched at term broadcast; zero
// when this process never observed both endpoints.
func (b *appBinding) detectLatency() float64 {
	return float64(b.detectLatNS.Load()) / float64(time.Second)
}

// markTerm latches the term-broadcast stamp and, on the winning CAS,
// the detection latency — sampled under the same gate, so later
// compute completions cannot perturb it.
func (b *appBinding) markTerm() {
	now := time.Now().UnixNano()
	if b.termNS.CompareAndSwap(0, now) {
		if done := b.lastDoneNS.Load(); done > 0 && now >= done {
			b.detectLatNS.Store(now - done)
		}
	}
}

// now is the host-clock timestamp for trace events (0 before attach).
func (b *appBinding) now() float64 {
	s := b.startNS.Load()
	if s == 0 {
		return 0
	}
	return float64(time.Now().UnixNano()-s) / float64(time.Second)
}

// signalDone latches termination observed by a local detector.
func (b *appBinding) signalDone() {
	b.doneOnce.Do(func() { close(b.doneCh) })
}

// nodeDetCtx is one node's termdet.Context: control frames travel as
// TypeCtrl codec frames with real encoded sizes tallied at the writer
// (the estimate tallies charge core.BytesCtrl).
type nodeDetCtx struct{ nd *Node }

func (c nodeDetCtx) Rank() int { return c.nd.rank }
func (c nodeDetCtx) N() int    { return c.nd.n }

func (c nodeDetCtx) SendCtrl(to int, ct termdet.Ctrl) {
	if ct.Kind == termdet.CtrlTerm {
		c.nd.appB.markTerm()
	}
	c.nd.est.AddCtrl(core.BytesCtrl)
	c.nd.post(to, CtrlMessage(c.nd.rank, ct))
}

// runApp is the node main loop in app mode: the hosted application's
// Algorithm 1 — pending compute first (a task the application just
// started runs immediately), then detector control frames (highest
// priority, exempt from Blocked gating), the prioritized state channel,
// Blocked gating, application data messages, TryStart, and a passivity
// declaration to the detector before blocking when idle.
func (nd *Node) runApp() {
	b := nd.appB
	rec := nd.opts.Rec
	defer func() {
		if nd.idleSid != 0 {
			rec.SpanEnd(nd.rank, "termdet.idle", nd.idleSid, b.now())
			nd.idleSid = 0
		}
		close(nd.done)
	}()
	select {
	case <-b.ready:
	case <-nd.quit:
		return
	}
	r := nd.rank
	for {
		select {
		case <-nd.quit:
			return
		default:
		}
		if p := nd.appPend; p != nil {
			nd.appPend = nil
			nd.appSleep(p.seconds)
			b.mu.Lock()
			p.done()
			b.mu.Unlock()
			b.lastDoneNS.Store(time.Now().UnixNano())
			continue
		}
		// Priority 0: detector control frames.
		select {
		case m := <-nd.ctrlCh:
			nd.appHandleCtrl(m)
			continue
		default:
		}
		// Priority 1: state-information messages.
		select {
		case m := <-nd.stateCh:
			nd.appHandleState(m)
			continue
		default:
		}
		b.mu.Lock()
		blocked := b.app.Blocked(r)
		b.mu.Unlock()
		if blocked {
			// Snapshot in progress: treat only state messages (and
			// control frames — a blocked rank still acknowledges).
			select {
			case m := <-nd.ctrlCh:
				nd.appHandleCtrl(m)
			case m := <-nd.stateCh:
				nd.appHandleState(m)
			case <-nd.quit:
				return
			}
			continue
		}
		// Priority 2: application data messages.
		select {
		case m := <-nd.appCh:
			nd.appHandleData(m)
			continue
		default:
		}
		// Priority 3: local ready tasks. TryStart can open a snapshot
		// (Acquire broadcast → Blocked), so the busy meter observes
		// here too — otherwise the request-to-first-reply interval
		// would be dropped from BusyTime (the simulator host meters
		// this transition as well).
		b.mu.Lock()
		started := b.app.TryStart(r)
		stillBlocked := b.app.Blocked(r)
		nd.busy.Observe(stillBlocked)
		b.mu.Unlock()
		if started {
			continue
		}
		if !stillBlocked {
			// Nothing pending, nothing startable, not snapshot-blocked:
			// declare the rank passive. The detector reactivates it on
			// the next data-message receipt; detection closes the run.
			// The park below is a termdet.idle trace span — the per-rank
			// idle time the paper's blocked-time argument is about.
			if rec != nil && nd.idleSid == 0 {
				nd.idleSid = rec.SpanBegin(nd.rank, "termdet.idle", b.now())
			}
			nd.appDet.Passive(nodeDetCtx{nd})
			if nd.appDet.Terminated() {
				b.signalDone()
			}
		}
		select {
		case m := <-nd.ctrlCh:
			nd.endIdleSpan()
			nd.appHandleCtrl(m)
		case m := <-nd.stateCh:
			nd.endIdleSpan()
			nd.appHandleState(m)
		case m := <-nd.appCh:
			nd.endIdleSpan()
			nd.appHandleData(m)
		case <-nd.wakeCh:
			nd.endIdleSpan()
		case <-nd.quit:
			return
		}
	}
}

// endIdleSpan closes the open termdet.idle span, if any — the rank
// just woke up. Node goroutine only.
func (nd *Node) endIdleSpan() {
	if nd.idleSid != 0 {
		nd.opts.Rec.SpanEnd(nd.rank, "termdet.idle", nd.idleSid, nd.appB.now())
		nd.idleSid = 0
	}
}

// appHandleState treats one state-channel item in app mode. Control
// closures (Invoke: counter sampling) bypass the application.
func (nd *Node) appHandleState(m inMsg) {
	if m.ctl != nil {
		m.ctl()
		return
	}
	b := nd.appB
	b.mu.Lock()
	b.app.HandleState(nd.rank, m.from, m.kind, m.payload)
	nd.busy.Observe(b.app.Blocked(nd.rank))
	b.mu.Unlock()
}

// appHandleData treats one application data message.
func (nd *Node) appHandleData(m appMsg) {
	b := nd.appB
	nd.appDet.OnReceive(nodeDetCtx{nd}, m.from)
	b.mu.Lock()
	b.app.HandleData(nd.rank, m.from, m.m)
	b.mu.Unlock()
}

// appHandleCtrl treats one detector control frame. It never touches the
// application, so it runs outside the callback mutex.
func (nd *Node) appHandleCtrl(m ctrlMsg) {
	nd.appDet.OnCtrl(nodeDetCtx{nd}, m.from, m.c)
	if nd.appDet.Terminated() {
		nd.appB.signalDone()
	}
}

// appSleep spends one compute interval of wall clock, bounded by quit
// so shutdown is prompt. The node's timer is reused across intervals
// (appSleep only ever runs on the node goroutine): time.After would
// leave one uncollected runtime timer per compute interval, which adds
// up under short intervals on long scenario runs.
func (nd *Node) appSleep(seconds float64) {
	d := time.Duration(seconds * nd.appB.scale * float64(time.Second))
	if d <= 0 {
		return
	}
	if nd.sleepTimer == nil {
		nd.sleepTimer = time.NewTimer(d)
	} else {
		nd.sleepTimer.Reset(d)
	}
	select {
	case <-nd.sleepTimer.C:
	case <-nd.quit:
		if !nd.sleepTimer.Stop() {
			<-nd.sleepTimer.C // drain so a later Reset starts clean
		}
	}
}

// netAppHost implements workload.AppHost over local nodes: all n of
// them in-process, or a single one under fork (remote entries nil).
type netAppHost struct {
	b     *appBinding
	nodes []*Node
	start time.Time
}

func (h *netAppHost) N() int              { return len(h.nodes) }
func (h *netAppHost) Local(rank int) bool { return h.nodes[rank] != nil }
func (h *netAppHost) Now() float64        { return time.Since(h.start).Seconds() }

func (h *netAppHost) Context(rank int) core.Context {
	nd := h.nodes[rank]
	if nd == nil {
		panic(fmt.Sprintf("net: Context(%d) for a rank this host does not run", rank))
	}
	return nodeCtx{nd}
}

func (h *netAppHost) SendData(from, to int, m workload.DataMsg) {
	nd := h.nodes[from]
	// The estimate tallies charge the application's modeled byte size;
	// the writer goroutine tallies the real encoded frame.
	nd.est.AddData(m.Bytes)
	nd.appDet.OnSend(nodeDetCtx{nd}, to)
	if to == from {
		// Applications do not normally self-send; deliver locally.
		nd.appCh <- appMsg{from: from, m: m}
		return
	}
	nd.post(to, DataMessage(from, m))
}

func (h *netAppHost) Compute(rank int, seconds float64, done func()) {
	nd := h.nodes[rank]
	if nd.appPend != nil {
		panic(fmt.Sprintf("net: rank %d started a task while busy", rank))
	}
	nd.appPend = &appCompute{seconds: seconds * h.b.opts.SpeedOf(rank), done: done}
}

func (h *netAppHost) Wake(rank int) {
	nd := h.nodes[rank]
	if nd == nil {
		panic(fmt.Sprintf("net: Wake(%d) for a rank this host does not run", rank))
	}
	select {
	case nd.wakeCh <- struct{}{}:
	default:
	}
}

// bindAppNode prepares one local node to host rank nd.rank of the
// bound application: binding, detector, nothing else. Must run before
// Start launches the node loop.
func bindAppNode(nd *Node, b *appBinding) error {
	det, err := termdet.New(b.opts.Term, nd.n, nd.rank)
	if err != nil {
		return err
	}
	nd.appB = b
	nd.appDet = det
	return nil
}

// appReportOf samples one quiesced node's transport tallies into a
// host report (real encoded frame-body sizes from the writers).
func appReportOf(nodes []*Node, elapsed float64) *workload.AppReport {
	rep := &workload.AppReport{Time: elapsed}
	for _, nd := range nodes {
		if nd == nil {
			continue
		}
		rep.Counters.Merge(nd.sampleCounters())
		tr := nd.Transport()
		rep.WireMsgs += tr.MsgsIn
		rep.WireBytes += tr.BytesIn
	}
	return rep
}

// AppRunner implements workload.AppRunner over localhost TCP: the same
// mesh, codec and graceful-shutdown machinery as Cluster, with the node
// main loops running a hosted application. State, data and control
// tallies in the report are real encoded frame-body sizes counted at
// the writers.
type AppRunner struct {
	// Opts is the node option template (codec, timeouts, logging);
	// Initial and Speed are ignored — application state comes from the
	// App itself.
	Opts Options
	// TimeScale is the wall-clock duration of one application second of
	// compute (default 1).
	TimeScale float64
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "net" }

// RunApp implements workload.AppRunner.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	b := &appBinding{
		app:    app,
		opts:   opts,
		scale:  scale,
		ready:  make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	nodeOpts := r.Opts
	nodeOpts.Initial, nodeOpts.Speed = nil, nil
	if nodeOpts.Rec == nil {
		// App cells record through the workload layer; the nodes share
		// the same recorder so host-level spans (termdet.idle) land in
		// the same trace.
		nodeOpts.Rec = opts.Rec
	}

	nodes := make([]*Node, 0, n)
	stop := func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
		wg.Wait()
	}
	addrs := make([]string, n)
	for rank := 0; rank < n; rank++ {
		// The node's own exchanger is unused in app mode (the
		// application owns its mechanisms); any registered mechanism
		// satisfies the constructor.
		nd, err := NewNode(rank, n, core.MechNaive, core.Config{}, nodeOpts)
		if err != nil {
			stop()
			return nil, err
		}
		if err := bindAppNode(nd, b); err != nil {
			stop()
			return nil, err
		}
		nodes = append(nodes, nd)
		if addrs[rank], err = nd.Listen("127.0.0.1:0"); err != nil {
			stop()
			return nil, err
		}
	}
	// Start the whole mesh concurrently: rank r's Start blocks until
	// every higher rank has dialed it.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = nodes[rank].Start(addrs)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			stop()
			return nil, err
		}
	}

	host := &netAppHost{b: b, nodes: nodes, start: time.Now()}
	b.startNS.Store(host.start.UnixNano())
	b.mu.Lock()
	err := app.Attach(host)
	b.mu.Unlock()
	if err != nil {
		stop()
		return nil, err
	}
	close(b.ready)

	var runErr error
	select {
	case <-b.doneCh:
	case <-time.After(timeout):
		// Diagnose without the callback mutex: a wedged callback may
		// hold b.mu forever, and the timeout guard must still report.
		runErr = fmt.Errorf("net: no termination detected after %s (protocol %s)",
			timeout, nodes[0].appDet.Name())
	}
	// Sample the makespan at quiescence, before the mesh teardown
	// (graceful Close — writer flushes, FIN exchanges — can take as
	// long as a small run itself).
	elapsed := time.Since(host.start).Seconds()
	stop()
	rep := appReportOf(nodes, elapsed)
	rep.DetectLatency = b.detectLatency()
	return rep, runErr
}

// AppNode hosts a single rank of an application on one Node — the
// forked deployment behind `loadex cluster -scenario solver-wl` /
// `loadex node -scenario solver-wl -rank r`. Each OS process builds
// the application instance deterministically from the shared flags,
// binds it to its node before Start, and runs its one local rank; the
// detector's CtrlTerm announcement (from whichever process hosts rank
// 0) releases every process.
type AppNode struct {
	nd   *Node
	b    *appBinding
	host *netAppHost
}

// NewAppNode binds app's rank nd.Rank() to nd. Call it after NewNode
// and before Start (the app-mode main loop parks until Run attaches
// the application).
func NewAppNode(nd *Node, app workload.App, opts workload.AppRunOptions, timeScale float64) (*AppNode, error) {
	if timeScale <= 0 {
		timeScale = 1
	}
	b := &appBinding{
		app:    app,
		opts:   opts,
		scale:  timeScale,
		ready:  make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if err := bindAppNode(nd, b); err != nil {
		return nil, err
	}
	nodes := make([]*Node, nd.n)
	nodes[nd.rank] = nd
	return &AppNode{nd: nd, b: b, host: &netAppHost{b: b, nodes: nodes}}, nil
}

// Run attaches the application (call after the node's Start succeeded)
// and blocks until the detector announces global termination, then
// returns the node's transport report. The caller still owns the node
// and must Close it.
func (an *AppNode) Run(timeout time.Duration) (*workload.AppReport, error) {
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	an.host.start = time.Now()
	an.b.startNS.Store(an.host.start.UnixNano())
	an.b.mu.Lock()
	err := an.b.app.Attach(an.host)
	an.b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	close(an.b.ready)
	select {
	case <-an.b.doneCh:
	case <-time.After(timeout):
		return nil, fmt.Errorf("net: rank %d: no termination detected after %s (protocol %s)",
			an.nd.rank, timeout, an.nd.appDet.Name())
	}
	elapsed := time.Since(an.host.start).Seconds()
	// The rank loop is still running (it stops at Close); the sample
	// must go through the node goroutine.
	var rep *workload.AppReport
	an.nd.Invoke(func(core.Context, core.Exchanger) {
		rep = appReportOf(an.host.nodes, elapsed)
	})
	if rep == nil {
		rep = appReportOf(an.host.nodes, elapsed)
	}
	rep.DetectLatency = an.b.detectLatency()
	return rep, nil
}
