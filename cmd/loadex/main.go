// Command loadex regenerates the tables and figures of "A study of
// various load information exchange mechanisms for a distributed
// application using dynamic scheduling" (Guermouche & L'Excellent,
// RR-5478, 2005).
//
// Usage:
//
//	loadex [flags] <table1|table3|table4|table5|table6|table7|fig1|fig2|ablations|all>
//
// Flags:
//
//	-scale f     global matrix scale multiplier (default 1.0; the
//	             per-processor-count factors of the experiment suite
//	             apply on top)
//	-seed n      generator seed (default 1)
//
// Besides the experiment tables, three subcommands run registered
// workload scenarios (internal/workload) on the runtimes:
//
//	loadex run     [-scenario s] [-mech m] [-runtime r] [-topo t]   the
//	               scenario × mechanism × runtime matrix ("all" fans any
//	               axis out; -topo names the neighbor graph state
//	               messages travel, default full)
//	loadex experiment [-repeat k] [-json file] [...]   the measured matrix:
//	               per-cell message/byte/latency aggregates over k runs,
//	               paper-shaped markdown tables + benchmark JSON
//	loadex cluster [-procs n] [-mech m] [-term t] [...]   fork an
//	                                            n-process TCP cluster,
//	                                            run one scenario,
//	                                            report per-rank stats
//	loadex node    [-rank r] [...]              one cluster process
//	                                            (normally forked by cluster)
//	loadex serve   [-procs n] [-mech m] [-addr a]   persistent scheduler
//	                                            service: a resident TCP
//	                                            mesh serving a stream of
//	                                            jobs (SIGTERM drains)
//	loadex submit  [-addr a] [-kind k] [...]    submit one job to a
//	                                            serving instance
//	loadex job     <status|result|cancel|metrics> query a serving instance
//	loadex top     [-addr a] [-interval d]      per-rank telemetry dashboard
//	                                            over a serving instance
//	loadex report  [-dir d]                     render recorded traces into
//	                                            Chrome trace_event timelines
//	                                            and latency tables
//	loadex list    print the registered scenarios (program and app),
//	               mechanisms, topologies, termination protocols,
//	               runtimes and codecs — the sweep axes
//
// Scenarios come in two kinds: program scenarios compile to per-rank
// synthetic step scripts, and application scenarios (solver-wl,
// solver-mem, solver-hetero) host the paper's real multifrontal solver
// through the application port on any runtime — in-process or forked
// one OS process per rank, with quiescence decided by a distributed
// termination detector (-term: ds or safra, internal/termdet).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "node":
			if err := runNode(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex node:", err)
				os.Exit(1)
			}
			return
		case "cluster":
			if err := runCluster(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex cluster:", err)
				os.Exit(1)
			}
			return
		case "run":
			if err := runRun(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex run:", err)
				os.Exit(1)
			}
			return
		case "experiment":
			if err := runExperiment(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex experiment:", err)
				os.Exit(1)
			}
			return
		case "validate":
			if err := runValidate(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex validate:", err)
				os.Exit(1)
			}
			return
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex serve:", err)
				os.Exit(1)
			}
			return
		case "submit":
			if err := runSubmit(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex submit:", err)
				os.Exit(1)
			}
			return
		case "job":
			if err := runJobCmd(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex job:", err)
				os.Exit(1)
			}
			return
		case "top":
			if err := runTop(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex top:", err)
				os.Exit(1)
			}
			return
		case "report":
			if err := runReport(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex report:", err)
				os.Exit(1)
			}
			return
		case "list":
			if err := runList(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loadex list:", err)
				os.Exit(1)
			}
			return
		}
	}
	scale := flag.Float64("scale", 1.0, "global matrix scale multiplier")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	lab := experiments.NewLab(cfg)
	w := os.Stdout

	var run func(what string) error
	run = func(what string) error {
		switch what {
		case "table1", "table2", "matrices":
			rows, err := lab.Matrices(32)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "== Tables 1-2: test problems (paper matrices vs synthetic analogues at 32p scale) ==")
			experiments.WriteMatrices(w, rows)
		case "table3":
			rows, err := lab.Table3()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "== Table 3: number of dynamic decisions ==")
			experiments.WriteTable3(w, rows)
		case "table4":
			rows, err := lab.Table4(nil)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "== Table 4: peak of active memory, memory-based strategy ==")
			experiments.WriteTable4(w, rows)
		case "table5", "table6", "table7":
			rows, err := lab.Table567(nil, what == "table7")
			if err != nil {
				return err
			}
			switch what {
			case "table5":
				fmt.Fprintln(w, "== Table 5: factorization time, workload-based strategy ==")
				experiments.WriteTable5(w, rows)
			case "table6":
				fmt.Fprintln(w, "== Table 6: load-exchange messages ==")
				experiments.WriteTable6(w, rows)
			case "table7":
				fmt.Fprintln(w, "== Table 7: threaded load-exchange, factorization time ==")
				experiments.WriteTable7(w, rows)
			}
		case "fig1":
			fmt.Fprintln(w, "== Figure 1: coherence of the view under concurrent selections ==")
			for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
				if err := experiments.Figure1(w, mech); err != nil {
					return err
				}
			}
		case "fig2":
			fmt.Fprintln(w, "== Figure 2: assembly tree distribution ==")
			if err := lab.Figure2(w, "BMWCRA_1"); err != nil {
				return err
			}
		case "ablations":
			fmt.Fprintln(w, "== Ablation: No_more_master (§2.3) ==")
			nm, err := lab.AblationNoMoreMaster(64)
			if err != nil {
				return err
			}
			experiments.WriteAblationNoMoreMaster(w, nm)
			fmt.Fprintln(w, "== Ablation: snapshot leader-election criterion (§5) ==")
			le, err := lab.AblationLeaderElection(64)
			if err != nil {
				return err
			}
			experiments.WriteAblationLeaderElection(w, le)
			fmt.Fprintln(w, "== Ablation: increments broadcast threshold (§2.3) ==")
			th, err := lab.AblationThreshold("AUDIKW_1", 64, nil)
			if err != nil {
				return err
			}
			experiments.WriteAblationThreshold(w, th)
			fmt.Fprintln(w, "== Ablation: partial snapshots (§5) ==")
			ps, err := lab.AblationPartialSnapshot(64)
			if err != nil {
				return err
			}
			experiments.WriteAblationPartialSnapshot(w, ps)
			fmt.Fprintln(w, "== Ablation: high-latency interconnect (§5) ==")
			nw, err := lab.AblationNetwork(64)
			if err != nil {
				return err
			}
			experiments.WriteAblationNetwork(w, nw)
		case "all":
			for _, t := range []string{"table1", "table3", "table4", "table5", "table6", "table7", "fig1", "fig2", "ablations"} {
				if err := run(t); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
		default:
			usage()
			return fmt.Errorf("unknown experiment %q", what)
		}
		return nil
	}

	for _, what := range flag.Args() {
		if err := run(what); err != nil {
			fmt.Fprintln(os.Stderr, "loadex:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: loadex [-scale f] [-seed n] <table1|table3|table4|table5|table6|table7|fig1|fig2|ablations|all>")
	fmt.Fprintf(os.Stderr, "       loadex run [-scenario %s|all] [-mech %s|all] [-runtime sim|live|net|all] [-topo %s] [-inproc] ...\n",
		strings.Join(workload.Names(), "|"), strings.Join(mechNames(), "|"), strings.Join(core.TopologyNames(), "|"))
	fmt.Fprintln(os.Stderr, "       loadex experiment [-scenario s|all] [-mech m|all] [-runtime r|all] [-topo t1,t2,...] [-repeat k] [-json file] ...")
	fmt.Fprintln(os.Stderr, "       loadex experiment -service [-mech m|all] [-jobs n] [-conc k] ...   (scheduler-service throughput bench)")
	fmt.Fprintln(os.Stderr, "       loadex cluster [-procs n] [-scenario s] [-mech m|all] [-inproc] ...")
	fmt.Fprintln(os.Stderr, "       loadex node -rank r -n procs [-scenario s] [-mech m] ...   (normally forked by cluster)")
	fmt.Fprintln(os.Stderr, "       loadex validate -dir d   (replay recorded chaos traces, check cross-rank invariants)")
	fmt.Fprintln(os.Stderr, "       loadex serve [-procs n] [-mech m] [-term t] [-addr host:port]   (persistent scheduler service)")
	fmt.Fprintln(os.Stderr, "       loadex submit [-addr a] [-kind synthetic|app] [-wait] ...   (submit one job to a serving instance)")
	fmt.Fprintln(os.Stderr, "       loadex job <status|result|cancel|metrics> [-addr a] [-id n]   (query a serving instance)")
	fmt.Fprintln(os.Stderr, "       loadex top -addr a [-interval d] [-count k]   (per-rank telemetry dashboard over a serving instance)")
	fmt.Fprintln(os.Stderr, "       loadex report -dir d   (render recorded traces into Chrome trace_event timelines + latency tables)")
	fmt.Fprintln(os.Stderr, "       loadex list   (print registered scenarios, mechanisms, topologies, chaos plans, runtimes and codecs)")
}
