package net

import (
	"testing"

	"repro/internal/termdet"
	"repro/internal/workload"
)

// ringApp is a minimal workload.App exercising the quiescence
// subsystem over the real TCP mesh: a token of data messages circles
// the ranks `laps` times, each hop preceded by a tiny compute. The app
// keeps no outstanding-work state of its own — the run can only end
// correctly if the termination detector does its job (the last hop's
// message must be acknowledged/counted before rank 0's detector
// concludes).
type ringApp struct {
	host    workload.AppHost
	n, laps int

	started bool
	hops    int
}

func (a *ringApp) Attach(host workload.AppHost) error {
	a.host = host
	a.n = host.N()
	return nil
}

func (a *ringApp) HandleState(rank, from, kind int, payload any) {}

func (a *ringApp) HandleData(rank, from int, m workload.DataMsg) {
	a.hops++
	hop := m.Count
	if int(hop) >= a.n*a.laps {
		return
	}
	a.host.Compute(rank, 1e-6, func() {
		a.host.SendData(rank, (rank+1)%a.n, workload.DataMsg{Count: hop + 1, Bytes: 16})
	})
}

func (a *ringApp) TryStart(rank int) bool {
	if rank != 0 || a.started {
		return false
	}
	a.started = true
	a.host.Compute(rank, 1e-6, func() {
		a.host.SendData(rank, 1%a.n, workload.DataMsg{Count: 1, Bytes: 16})
	})
	return true
}

func (a *ringApp) Blocked(rank int) bool { return false }
func (a *ringApp) Done() bool            { return a.hops >= a.n*a.laps }

func (a *ringApp) Outcome(hr *workload.AppReport) workload.AppOutcome {
	return workload.AppOutcome{Executed: []int64{int64(a.hops)}}
}

// TestDetectorProtocolsOverTCP drives detector control frames over the
// real localhost mesh under both protocols — the race lane runs this
// with -race, so the detector wiring (per-node protocol state, ctrl
// channel routing, passivity declarations) is exercised under real
// concurrency. The app is done exactly when the token finished its
// laps; a detector firing early would surface as hops < n*laps.
func TestDetectorProtocolsOverTCP(t *testing.T) {
	for _, proto := range termdet.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			app := &ringApp{laps: 3}
			r := &AppRunner{}
			hr, err := r.RunApp(4, app, workload.AppRunOptions{Term: proto})
			if err != nil {
				t.Fatal(err)
			}
			if !app.Done() {
				t.Fatalf("detector (%s) concluded after %d hops, want %d", proto, app.hops, 4*app.laps)
			}
			if hr.Counters.CtrlMsgs == 0 {
				t.Fatal("no control frames tallied: detector traffic not counted")
			}
			if hr.Counters.DataMsgs != int64(4*app.laps) {
				t.Fatalf("data msgs %d, want %d", hr.Counters.DataMsgs, 4*app.laps)
			}
		})
	}
}

// TestUnknownTermProtocolRejected pins the registry error path through
// a host.
func TestUnknownTermProtocolRejected(t *testing.T) {
	app := &ringApp{laps: 1}
	r := &AppRunner{}
	if _, err := r.RunApp(2, app, workload.AppRunOptions{Term: "gossip"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
