// Quickstart: run the three load-information exchange mechanisms of
// Guermouche & L'Excellent (RR-5478, 2005) over real goroutines and
// channels, take a few dynamic scheduling decisions, and watch how
// coherent each mechanism's view of the system is.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/live"
)

func main() {
	const nodes = 8
	for _, mech := range []core.Mech{core.MechNaive, core.MechIncrements, core.MechSnapshot} {
		fmt.Printf("=== mechanism: %s ===\n", mech)
		cl, err := live.NewCluster(nodes, mech, core.Config{
			Threshold:       core.Load{core.Workload: 5},
			NoMoreMasterOpt: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Three masters take decisions concurrently: each distributes 120
		// units of work over its 3 least-loaded peers (as it sees them).
		errs := make(chan error, 3)
		for _, master := range []int{0, 1, 2} {
			go func(m int) { errs <- cl.Decide(m, 120, 3, 2*time.Millisecond) }(master)
		}
		for i := 0; i < 3; i++ {
			if err := <-errs; err != nil {
				log.Fatal(err)
			}
		}
		if err := cl.Drain(5 * time.Second); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond) // let trailing updates settle

		fmt.Println("work items executed per node:")
		for r := 0; r < nodes; r++ {
			fmt.Printf("  node %d: %d\n", r, cl.Executed(r))
		}
		if mech == core.MechSnapshot {
			st := cl.Stats(0)
			fmt.Printf("node 0 snapshot stats: initiated=%d restarts=%d\n",
				st.SnapshotsInitiated, st.SnapshotRestarts)
		}
		cl.Stop()
	}
	fmt.Println("done — see cmd/loadex for the paper's full experiment suite")
}
