package net

import (
	"bytes"
	"encoding/binary"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/chaos"
)

// sinkConn is a net.Conn stub collecting everything written to it; the
// fault writer only ever calls Write and Close.
type sinkConn struct {
	net.Conn
	buf    bytes.Buffer
	closed bool
}

func (c *sinkConn) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *sinkConn) Close() error                { c.closed = true; return nil }

// frame builds one length-prefixed wire frame whose body leads with the
// type tag (the binary codec's layout) followed by payload.
func frame(t MsgType, payload ...byte) []byte {
	body := append([]byte{byte(t)}, payload...)
	f := make([]byte, FrameHeaderBytes+len(body))
	binary.BigEndian.PutUint32(f, uint32(len(body)))
	copy(f[FrameHeaderBytes:], body)
	return f
}

// splitFrames re-parses a raw byte stream into frames.
func splitFrames(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for len(raw) > 0 {
		if len(raw) < FrameHeaderBytes {
			t.Fatalf("trailing partial header: % x", raw)
		}
		total := FrameHeaderBytes + int(binary.BigEndian.Uint32(raw))
		if len(raw) < total {
			t.Fatalf("trailing partial frame: % x", raw)
		}
		frames = append(frames, raw[:total])
		raw = raw[total:]
	}
	return frames
}

// quietPlan is a non-nil plan injecting nothing (selectors disabled),
// so the writer's framing machinery runs without faults.
func quietPlan() *chaos.Plan {
	return &chaos.Plan{Name: "quiet", Seed: 1, SlowRank: -1, CrashRank: -1}
}

func newTestWriter(conn net.Conn, plan *chaos.Plan) *faultWriter {
	return newFaultWriter(conn, plan, 0, 1, time.Now(), make(chan struct{}))
}

// TestFaultWriterReframesSplitWrites: frames batched together or split
// across Write calls (bufio flushes at arbitrary boundaries) must come
// out whole and in order.
func TestFaultWriterReframesSplitWrites(t *testing.T) {
	conn := &sinkConn{}
	fw := newTestWriter(conn, quietPlan())
	f1 := frame(TypeState, 'a')
	f2 := frame(TypeData, 'b', 'c')
	f3 := frame(TypeCtrl, 'd')
	batch := append(append(append([]byte{}, f1...), f2...), f3...)
	// First write ends mid-f3 (inside its header, even).
	cut := len(f1) + len(f2) + 2
	for _, chunk := range [][]byte{batch[:cut], batch[cut:]} {
		if n, err := fw.Write(chunk); err != nil || n != len(chunk) {
			t.Fatalf("Write = %d, %v; want %d, nil", n, err, len(chunk))
		}
	}
	got := splitFrames(t, conn.buf.Bytes())
	want := [][]byte{f1, f2, f3}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d = % x, want % x", i, got[i], want[i])
		}
	}
}

// TestFaultWriterLossClasses: loss applies to state frames (and data
// only with LossData); control, handshake and quiescence bookkeeping
// always pass.
func TestFaultWriterLossClasses(t *testing.T) {
	plan := quietPlan()
	plan.Loss = 1 // drop every droppable frame
	conn := &sinkConn{}
	fw := newTestWriter(conn, plan)
	var in []byte
	for _, f := range [][]byte{
		frame(TypeState, 1), frame(TypeWork, 2), frame(TypeData, 3),
		frame(TypeCtrl, 4), frame(TypeDone, 5), frame(TypeWorkDone, 6),
	} {
		in = append(in, f...)
	}
	if _, err := fw.Write(in); err != nil {
		t.Fatal(err)
	}
	var kinds []MsgType
	for _, f := range splitFrames(t, conn.buf.Bytes()) {
		kinds = append(kinds, MsgType(f[FrameHeaderBytes]))
	}
	want := []MsgType{TypeWork, TypeData, TypeCtrl, TypeDone, TypeWorkDone}
	if len(kinds) != len(want) {
		t.Fatalf("survivors = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", kinds, want)
		}
	}

	// LossData extends the drop set to work/data frames.
	plan.LossData = true
	conn2 := &sinkConn{}
	fw2 := newTestWriter(conn2, plan)
	if _, err := fw2.Write(in); err != nil {
		t.Fatal(err)
	}
	for _, f := range splitFrames(t, conn2.buf.Bytes()) {
		switch k := MsgType(f[FrameHeaderBytes]); k {
		case TypeState, TypeWork, TypeData:
			t.Fatalf("droppable frame %s survived Loss=1", k)
		}
	}
}

// TestFaultWriterReorderPermutes: a Reorder plan may swap adjacent
// frames within a batch but must forward exactly the frames it was
// given — reordering is a permutation, never loss or duplication.
func TestFaultWriterReorderPermutes(t *testing.T) {
	plan := quietPlan()
	plan.Reorder = true
	conn := &sinkConn{}
	fw := newTestWriter(conn, plan)
	var in []byte
	var payloads []byte
	for i := byte(0); i < 16; i++ {
		in = append(in, frame(TypeData, i)...)
		payloads = append(payloads, i)
	}
	if _, err := fw.Write(in); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, f := range splitFrames(t, conn.buf.Bytes()) {
		got = append(got, f[FrameHeaderBytes+1])
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d frames, want %d", len(got), len(payloads))
	}
	sorted := append([]byte(nil), got...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if !bytes.Equal(sorted, payloads) {
		t.Fatalf("reorder changed the frame multiset: %v", got)
	}
	if bytes.Equal(got, payloads) {
		t.Fatalf("16 frames through a seeded reorder plan came out untouched")
	}
}

// TestFaultWriterSever: once the crash time passes, the writer closes
// the connection and every subsequent write fails — a dead rank's links
// stay dead.
func TestFaultWriterSever(t *testing.T) {
	plan := quietPlan()
	plan.CrashRank = 1
	plan.CrashAfter = 0.001
	conn := &sinkConn{}
	fw := newFaultWriter(conn, plan, 0, 1, time.Now().Add(-time.Second), make(chan struct{}))
	if _, err := fw.Write(frame(TypeData, 1)); err == nil {
		t.Fatalf("write on a crashed link succeeded")
	}
	if !conn.closed {
		t.Fatalf("severed link left the connection open")
	}
	if _, err := fw.Write(frame(TypeData, 2)); err == nil {
		t.Fatalf("severed link accepted a later write")
	}
}

// TestFrameClass covers both codec layouts plus the never-faulted rest.
func TestFrameClass(t *testing.T) {
	cases := []struct {
		body []byte
		want chaos.Class
	}{
		{[]byte{byte(TypeState), 9}, chaos.ClassState},
		{[]byte{byte(TypeWork)}, chaos.ClassData},
		{[]byte{byte(TypeData)}, chaos.ClassData},
		{[]byte{byte(TypeCtrl)}, chaos.ClassCtrl},
		{[]byte{byte(TypeHello)}, chaos.ClassOther},
		{[]byte{byte(TypeDone)}, chaos.ClassOther},
		{[]byte{byte(TypeWorkDone)}, chaos.ClassOther},
		{[]byte(`{"type":2,"kind":1}`), chaos.ClassState},
		{[]byte(`{"type":6}`), chaos.ClassData},
		{[]byte(`{"type":7}`), chaos.ClassCtrl},
		{[]byte(`{"type":1}`), chaos.ClassOther},
		{[]byte(`{"kind":2}`), chaos.ClassOther},
		{nil, chaos.ClassOther},
	}
	for _, tc := range cases {
		if got := frameClass(tc.body); got != tc.want {
			t.Errorf("frameClass(%q) = %v, want %v", tc.body, got, tc.want)
		}
	}
}
