package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// AppRunner implements workload.AppRunner over real goroutines and
// channels: the live side of the application port. Each rank runs one
// Algorithm 1 loop on its own goroutine — prioritized state channel,
// data channel, Blocked gating, deferred compute as real (scaled)
// sleeps — while application callbacks are serialized by one lock, per
// the port's execution model. Quiescence is detector-driven: each rank
// runs one termination-detection protocol (internal/termdet) whose
// control frames travel a dedicated highest-priority channel, and the
// run ends when the detector announces global termination — no
// host-side outstanding-work counting.
type AppRunner struct {
	// TimeScale is the wall-clock duration of one application second of
	// compute (default 1: application seconds are wall seconds; the
	// solver's virtual makespans are milliseconds, so default runs stay
	// fast). Lower it to compress long virtual runs into short wall
	// clock.
	TimeScale float64
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
	// Chaos, when active, degrades delivery at the in-process seam:
	// state and data messages can be dropped or delayed per the plan
	// (wall time), and a crashed rank stops sending and receiving
	// everything, control frames included. Plain delay preserves
	// per-link FIFO (each link drains its delayed messages through one
	// ordered queue, matching the simulator's clamp and the TCP
	// writer's sequential stalls); only a Reorder plan delivers via
	// independent timers and so genuinely breaks the FIFO assumption.
	Chaos *chaos.Plan
}

// Runtime implements workload.AppRunner.
func (*AppRunner) Runtime() string { return "live" }

// RunApp implements workload.AppRunner.
func (r *AppRunner) RunApp(n int, app workload.App, opts workload.AppRunOptions) (*workload.AppReport, error) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	h := &liveAppHost{
		app:      app,
		opts:     opts,
		scale:    scale,
		start:    time.Now(),
		ranks:    make([]liveAppRank, n),
		counters: make([]core.Counters, n),
		busy:     make([]core.BusyMeter, n),
		doneCh:   make(chan struct{}),
		quit:     make(chan struct{}),
	}
	if r.Chaos.Active() {
		h.plan = r.Chaos
		h.chaosRNG = r.Chaos.RNGFor(n)
		if !r.Chaos.Reorder && (r.Chaos.Delay > 0 || r.Chaos.SlowDelay > 0) {
			h.links = make([]chan liveDelivery, n*n)
		}
	}
	for i := range h.ranks {
		det, err := termdet.New(opts.Term, n, i)
		if err != nil {
			return nil, err
		}
		h.ranks[i] = liveAppRank{
			stateCh: make(chan liveStateMsg, 1<<16),
			dataCh:  make(chan liveDataMsg, 1<<14),
			ctrlCh:  make(chan liveCtrlMsg, 1<<14),
			wakeCh:  make(chan struct{}, 1),
			det:     det,
		}
	}
	h.mu.Lock()
	err := app.Attach(h)
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			h.runRank(rank)
		}(rank)
	}
	var runErr error
	select {
	case <-h.doneCh:
	case <-time.After(timeout):
		// Diagnose without the callback mutex: a wedged callback may
		// hold h.mu forever, and the timeout guard must still report.
		runErr = fmt.Errorf("live: no termination detected after %s (protocol %s)",
			timeout, h.ranks[0].det.Name())
	}
	// Sample the makespan at quiescence, before loop teardown.
	elapsed := time.Since(h.start).Seconds()
	close(h.quit)
	wg.Wait()
	rep := h.report()
	rep.Time = elapsed
	return rep, runErr
}

// liveStateMsg is one state-channel item; liveDataMsg one data-channel
// item; liveCtrlMsg one detector control frame.
type liveStateMsg struct {
	from, kind int
	payload    any
}

type liveDataMsg struct {
	from int
	m    workload.DataMsg
}

type liveCtrlMsg struct {
	from int
	c    termdet.Ctrl
}

// liveAppRank is one rank's hosting state. pending and det are only
// touched by the rank's own goroutine (Compute and sends are called
// from the rank's own callbacks, per the port's callback discipline).
type liveAppRank struct {
	stateCh chan liveStateMsg
	dataCh  chan liveDataMsg
	ctrlCh  chan liveCtrlMsg
	wakeCh  chan struct{}
	pending *liveCompute
	det     termdet.Protocol
	// timer is the rank's reused compute-sleep timer (rank goroutine
	// only): time.After would leave one uncollected runtime timer per
	// compute interval.
	timer *time.Timer
	// idleSid is the rank's open termdet.idle span (rank goroutine
	// only; 0 = none).
	idleSid int64
}

type liveCompute struct {
	seconds float64
	done    func()
}

// liveAppHost hosts one App over goroutines.
type liveAppHost struct {
	app   workload.App
	opts  workload.AppRunOptions
	scale float64
	start time.Time

	// mu serializes every application callback (and the send tallies,
	// since sends only happen inside callbacks).
	mu       sync.Mutex
	ranks    []liveAppRank
	counters []core.Counters
	busy     []core.BusyMeter

	// plan/chaosRNG inject delivery faults (nil without a plan). The
	// rng is only drawn under mu (state/data sends happen inside
	// callbacks); control frames are never randomly faulted, so the
	// lock-free SendCtrl path needs no draw.
	plan     *chaos.Plan
	chaosRNG *chaos.RNG
	// links[from*n+to], non-nil when the plan stalls deliveries without
	// permitting reorders, is the link's FIFO delivery queue: one
	// goroutine per active link sleeps out each message's stall in send
	// order, so delay jitter cannot reorder a link the way independent
	// timers would (the mechanisms assume FIFO channels, like the
	// paper's MPI). Queues are created lazily under mu.
	links []chan liveDelivery

	doneCh   chan struct{}
	doneOnce sync.Once
	quit     chan struct{}

	// lastDoneNS / termNS are wall-clock UnixNano stamps of the latest
	// compute completion and the detector's first CtrlTerm broadcast.
	// detectLatNS latches their difference at the moment the term stamp
	// wins its CAS: sampling at report time instead would race with a
	// straggling rank storing a later lastDoneNS after termination and
	// silently zero the latency.
	lastDoneNS  atomic.Int64
	termNS      atomic.Int64
	detectLatNS atomic.Int64
}

// markTerm stamps the detector's first termination broadcast and
// latches the detection latency under the same gate, so a compute
// completion recorded after the broadcast cannot retroactively change
// (or erase) the measurement.
func (h *liveAppHost) markTerm() {
	now := time.Now().UnixNano()
	if h.termNS.CompareAndSwap(0, now) {
		if done := h.lastDoneNS.Load(); done > 0 && now >= done {
			h.detectLatNS.Store(now - done)
		}
	}
}

// ---- workload.AppHost ---------------------------------------------------

func (h *liveAppHost) N() int                        { return len(h.ranks) }
func (h *liveAppHost) Local(rank int) bool           { return true }
func (h *liveAppHost) Now() float64                  { return time.Since(h.start).Seconds() }
func (h *liveAppHost) Context(rank int) core.Context { return liveAppCtx{h, rank} }

func (h *liveAppHost) SendData(from, to int, m workload.DataMsg) {
	h.counters[from].AddData(m.Bytes)
	h.ranks[from].det.OnSend(liveDetCtx{h, from}, to)
	stall, deliver := h.inject(from, to, chaos.ClassData)
	if !deliver {
		return
	}
	msg := liveDataMsg{from: from, m: m}
	ch := h.ranks[to].dataCh
	// The (inline) send runs under the callback mutex; the receiver's
	// buffer (16k messages) is the deadlock guard, as in live.Cluster.
	// In-process application scale keeps traffic orders of magnitude
	// below it; revisit before hosting much larger task graphs.
	h.dispatch(from, to, stall, func() {
		select {
		case ch <- msg:
		case <-h.quit:
		}
	})
}

// liveDelivery is one message riding a link's FIFO queue: sleep until
// at, then run send (which posts to the destination channel,
// quit-guarded).
type liveDelivery struct {
	at   time.Time
	send func()
}

// dispatch delivers one surviving (not dropped) message. When the plan
// stalls deliveries but forbids reordering, every remote message rides
// its link's FIFO queue — even stall-free ones, which must not overtake
// an earlier delayed message. Reorder plans use independent timers
// (deliberately racing), and the unfaulted path stays inline. Runs
// under mu, which guards lazy queue creation.
func (h *liveAppHost) dispatch(from, to int, stall time.Duration, send func()) {
	if h.links != nil && from != to {
		li := from*len(h.ranks) + to
		q := h.links[li]
		if q == nil {
			q = make(chan liveDelivery, 1<<14)
			h.links[li] = q
			go h.runLink(q)
		}
		q <- liveDelivery{at: time.Now().Add(stall), send: send}
		return
	}
	if stall > 0 {
		time.AfterFunc(stall, send)
		return
	}
	send()
}

// runLink drains one link's delayed deliveries in send order, sleeping
// out each message's residual stall. quit aborts a sleep early; the
// message's own quit-guarded send then drops it if the run is already
// torn down.
func (h *liveAppHost) runLink(q chan liveDelivery) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case d := <-q:
			if wait := time.Until(d.at); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-h.quit:
					if !timer.Stop() {
						<-timer.C
					}
				}
			}
			d.send()
		case <-h.quit:
			return
		}
	}
}

// inject applies the chaos plan to one in-process delivery: the extra
// stall to impose (0 = deliver inline) and whether to deliver at all.
// Must run under mu (it draws from the shared rng); local delivery is
// never faulted.
func (h *liveAppHost) inject(from, to int, cl chaos.Class) (time.Duration, bool) {
	if h.plan == nil || from == to {
		return 0, true
	}
	if h.plan.CrashedAt(time.Since(h.start).Seconds(), from, to) {
		return 0, false
	}
	if h.plan.Drops(cl, h.chaosRNG) {
		return 0, false
	}
	stall := h.plan.DelayFor(h.chaosRNG)
	if h.plan.SlowsLink(from, to) && h.plan.SlowDelay > 0 {
		stall += h.plan.SlowDelay
	}
	return time.Duration(stall * float64(time.Second)), true
}

func (h *liveAppHost) Compute(rank int, seconds float64, done func()) {
	rk := &h.ranks[rank]
	if rk.pending != nil {
		panic(fmt.Sprintf("live: rank %d started a task while busy", rank))
	}
	rk.pending = &liveCompute{seconds: seconds * h.opts.SpeedOf(rank), done: done}
}

func (h *liveAppHost) Wake(rank int) {
	select {
	case h.ranks[rank].wakeCh <- struct{}{}:
	default:
	}
}

// liveAppCtx is one rank's core.Context: mechanism sends on the
// prioritized state channel, charged at the modeled byte sizes.
type liveAppCtx struct {
	h    *liveAppHost
	rank int
}

func (c liveAppCtx) Rank() int    { return c.rank }
func (c liveAppCtx) N() int       { return c.h.N() }
func (c liveAppCtx) Now() float64 { return c.h.Now() }

func (c liveAppCtx) Send(to int, kind int, payload any, bytes float64) {
	h := c.h
	h.counters[c.rank].AddState(kind, bytes)
	stall, deliver := h.inject(c.rank, to, chaos.ClassState)
	if !deliver {
		return
	}
	msg := liveStateMsg{from: c.rank, kind: kind, payload: payload}
	ch := h.ranks[to].stateCh
	h.dispatch(c.rank, to, stall, func() {
		select {
		case ch <- msg:
		case <-h.quit:
		}
	})
}

func (c liveAppCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := range c.h.ranks {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

// liveDetCtx is one rank's termdet.Context: control frames on the
// dedicated channel, charged at the modeled frame size. Per-rank
// counters are only ever written from the rank's own goroutine, so the
// tallies need no lock.
type liveDetCtx struct {
	h    *liveAppHost
	rank int
}

func (c liveDetCtx) Rank() int { return c.rank }
func (c liveDetCtx) N() int    { return c.h.N() }

func (c liveDetCtx) SendCtrl(to int, ct termdet.Ctrl) {
	h := c.h
	if ct.Kind == termdet.CtrlTerm {
		h.markTerm()
	}
	h.counters[c.rank].AddCtrl(core.BytesCtrl)
	// A crashed rank neither sends nor receives control frames (no rng
	// draw: this path runs outside the callback mutex, and control
	// traffic is never randomly dropped or delayed).
	if h.plan != nil && h.plan.CrashedAt(time.Since(h.start).Seconds(), c.rank, to) {
		return
	}
	h.ranks[to].ctrlCh <- liveCtrlMsg{from: c.rank, c: ct}
}

// ---- rank main loop -----------------------------------------------------

// runRank is rank's Algorithm 1 loop: pending compute first (a task the
// application just started runs immediately, as on the simulator), then
// detector control frames (highest priority, exempt from Blocked
// gating), the prioritized state channel, Blocked gating, data
// messages, and finally TryStart; when nothing is available it declares
// the rank passive to the detector and blocks.
func (h *liveAppHost) runRank(rank int) {
	rk := &h.ranks[rank]
	defer h.endIdle(rk, rank)
	for {
		select {
		case <-h.quit:
			return
		default:
		}
		if p := rk.pending; p != nil {
			rk.pending = nil
			h.sleep(rk, p.seconds)
			h.mu.Lock()
			p.done()
			h.mu.Unlock()
			h.lastDoneNS.Store(time.Now().UnixNano())
			continue
		}
		// Priority 0: detector control frames.
		select {
		case m := <-rk.ctrlCh:
			h.handleCtrl(rank, m)
			continue
		default:
		}
		// Priority 1: drain state-information messages.
		if m, ok := h.pollState(rk); ok {
			h.handleState(rank, m)
			continue
		}
		h.mu.Lock()
		blocked := h.app.Blocked(rank)
		h.mu.Unlock()
		if blocked {
			// Snapshot in progress: treat only state messages (and
			// control frames — a blocked rank still acknowledges).
			select {
			case m := <-rk.ctrlCh:
				h.handleCtrl(rank, m)
			case m := <-rk.stateCh:
				h.handleState(rank, m)
			case <-h.quit:
				return
			}
			continue
		}
		// Priority 2: data messages.
		select {
		case m := <-rk.dataCh:
			h.handleData(rank, m)
			continue
		default:
		}
		// Priority 3: local ready tasks. TryStart can open a snapshot
		// (Acquire broadcast → Blocked), so the busy meter observes
		// here too — otherwise the request-to-first-reply interval
		// would be dropped from BusyTime (the simulator host meters
		// this transition as well).
		h.mu.Lock()
		started := h.app.TryStart(rank)
		stillBlocked := h.app.Blocked(rank)
		h.busy[rank].Observe(stillBlocked)
		h.mu.Unlock()
		if started {
			continue
		}
		if !stillBlocked {
			// Nothing pending, nothing startable, not snapshot-blocked:
			// this rank is passive. The detector reactivates it on the
			// next data-message receipt; detection (on rank 0) closes
			// the run.
			if rec := h.opts.Rec; rec != nil && rk.idleSid == 0 {
				rk.idleSid = rec.SpanBegin(rank, "termdet.idle", h.Now())
			}
			rk.det.Passive(liveDetCtx{h, rank})
			h.checkTerminated(rk)
		}
		select {
		case m := <-rk.ctrlCh:
			h.handleCtrl(rank, m)
		case m := <-rk.stateCh:
			h.handleState(rank, m)
		case m := <-rk.dataCh:
			h.handleData(rank, m)
		case <-rk.wakeCh:
		case <-h.quit:
			return
		}
		h.endIdle(rk, rank)
	}
}

// endIdle closes the rank's open termdet.idle span, if any (rank
// goroutine only).
func (h *liveAppHost) endIdle(rk *liveAppRank, rank int) {
	if rk.idleSid != 0 {
		h.opts.Rec.SpanEnd(rank, "termdet.idle", rk.idleSid, h.Now())
		rk.idleSid = 0
	}
}

func (h *liveAppHost) pollState(rk *liveAppRank) (liveStateMsg, bool) {
	select {
	case m := <-rk.stateCh:
		return m, true
	default:
		return liveStateMsg{}, false
	}
}

func (h *liveAppHost) handleState(rank int, m liveStateMsg) {
	h.mu.Lock()
	h.app.HandleState(rank, m.from, m.kind, m.payload)
	h.busy[rank].Observe(h.app.Blocked(rank))
	h.mu.Unlock()
}

func (h *liveAppHost) handleData(rank int, m liveDataMsg) {
	rk := &h.ranks[rank]
	rk.det.OnReceive(liveDetCtx{h, rank}, m.from)
	h.mu.Lock()
	h.app.HandleData(rank, m.from, m.m)
	h.mu.Unlock()
}

// handleCtrl treats one detector control frame. It never touches the
// application, so it runs outside the callback mutex.
func (h *liveAppHost) handleCtrl(rank int, m liveCtrlMsg) {
	rk := &h.ranks[rank]
	rk.det.OnCtrl(liveDetCtx{h, rank}, m.from, m.c)
	h.checkTerminated(rk)
}

// checkTerminated closes doneCh once this rank's detector knows about
// global termination (detected locally on rank 0, announced by a
// CtrlTerm frame elsewhere).
func (h *liveAppHost) checkTerminated(rk *liveAppRank) {
	if rk.det.Terminated() {
		h.doneOnce.Do(func() { close(h.doneCh) })
	}
}

// sleep spends one compute interval of wall clock on rk's goroutine,
// bounded by quit so shutdown is prompt. Each rank reuses its own
// timer across intervals (the sleep only ever runs on the rank's
// goroutine).
func (h *liveAppHost) sleep(rk *liveAppRank, seconds float64) {
	d := time.Duration(seconds * h.scale * float64(time.Second))
	if d <= 0 {
		return
	}
	if rk.timer == nil {
		rk.timer = time.NewTimer(d)
	} else {
		rk.timer.Reset(d)
	}
	select {
	case <-rk.timer.C:
	case <-h.quit:
		if !rk.timer.Stop() {
			<-rk.timer.C // drain so a later Reset starts clean
		}
	}
}

// report aggregates the per-rank transport tallies.
func (h *liveAppHost) report() *workload.AppReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &workload.AppReport{Time: time.Since(h.start).Seconds()}
	if lat := h.detectLatNS.Load(); lat > 0 {
		rep.DetectLatency = float64(lat) / float64(time.Second)
	}
	for r := range h.counters {
		c := h.counters[r].Clone()
		c.BusyTime = h.busy[r].Seconds
		rep.Counters.Merge(c)
	}
	return rep
}
