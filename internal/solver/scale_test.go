package solver_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/workload"
)

// runScaleCell runs one solver-wl sim cell and enforces its wall-clock
// budget. The budgets are deliberately loose multiples of the measured
// times (≈0.6s at 1024, ≈10s at 4096 on the pooled/batched engine) so
// the test catches a regression back to the pre-PR-9 engine — which
// took over a minute at 4096 — without flaking on a loaded CI host.
func runScaleCell(t *testing.T, procs int, mech core.Mech, budget time.Duration) *workload.Report {
	t.Helper()
	w, err := workload.Get("solver-wl")
	if err != nil {
		t.Fatal(err)
	}
	d := sim.NewWorkloadDriver()
	start := time.Now()
	rep, err := d.Run(w, mech, core.Config{NoMoreMasterOpt: true}, workload.Params{Procs: procs})
	if err != nil {
		t.Fatalf("%d procs × %s: %v", procs, mech, err)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("%d procs × %s: took %s, budget %s — engine throughput regression",
			procs, mech, elapsed.Round(time.Millisecond), budget)
	}
	if rep.SimEvents == 0 {
		t.Errorf("%d procs × %s: report carries no engine event count", procs, mech)
	}
	return rep
}

// TestSolverWlSimScale runs the solver-wl scenario at 1024 and 4096
// simulated processes — the engine-throughput scale the batched
// simulator exists for. At 1024 two mechanisms run and must agree on
// the structure-determined quantities (decision count and executed
// flops are fixed by the assembly tree, not by view timing); at 4096
// one mechanism proves the full run completes within its budget. Both
// sizes additionally check every rank's own view returns to zero after
// quiescence. Gated out of -short: these are the slowest cells in the
// repo's test suite.
func TestSolverWlSimScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024/4096-proc sim cells skipped in -short mode")
	}
	t.Run("1024", func(t *testing.T) {
		var refFlops float64
		refDecisions := 0
		for i, mech := range []core.Mech{core.MechIncrements, core.MechSnapshot} {
			rep := runScaleCell(t, 1024, mech, 30*time.Second)
			res, ok := rep.AppResult.(*solver.Result)
			if !ok {
				t.Fatalf("%s: AppResult is %T", mech, rep.AppResult)
			}
			if res.Decisions == 0 || res.MaxPeakMem <= 0 {
				t.Fatalf("%s: degenerate result %+v", mech, res)
			}
			if i == 0 {
				refFlops, refDecisions = res.TotalExecutedFlops(), res.Decisions
				continue
			}
			if res.Decisions != refDecisions {
				t.Errorf("%s: %d decisions, want %d (one per Type 2 node regardless of mechanism)",
					mech, res.Decisions, refDecisions)
			}
			if d := math.Abs(res.TotalExecutedFlops() - refFlops); d > 1e-9*math.Max(refFlops, 1) {
				t.Errorf("%s: executed flops %v, want %v (structure-determined)",
					mech, res.TotalExecutedFlops(), refFlops)
			}
		}
	})
	t.Run("4096", func(t *testing.T) {
		rep := runScaleCell(t, 4096, core.MechIncrements, 90*time.Second)
		res, ok := rep.AppResult.(*solver.Result)
		if !ok {
			t.Fatalf("AppResult is %T", rep.AppResult)
		}
		if res.Decisions == 0 || res.MaxPeakMem <= 0 {
			t.Fatalf("degenerate result %+v", res)
		}
		for r, view := range rep.FinalViews {
			for metric, v := range view[r] {
				if math.Abs(v) > 1e-3 {
					t.Errorf("rank %d final own %s = %v, want ~0", r, core.Metric(metric), v)
				}
			}
		}
	})
}
