package solver_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	xnet "repro/internal/net"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/workload"
)

// runners returns one fresh AppRunner per runtime. Fresh values per
// call: runners are cheap and a shared one must not leak state between
// cells.
func runners() map[string]workload.AppRunner {
	return map[string]workload.AppRunner{
		"sim":  onSim(),
		"live": &live.AppRunner{},
		"net":  &xnet.AppRunner{},
	}
}

// TestCrossRuntimeSolverEquivalence runs one solver cell per mechanism
// on all three runtimes and checks the invariants that must hold
// regardless of transport and timing:
//
//   - executed-flops conservation: the total executed floating-point
//     work equals the sim reference exactly (slave flops are linear in
//     the rows split, so the total is structure-determined even though
//     the split itself varies with view timing);
//   - identical decision counts: one dynamic selection per Type 2 node
//     on every runtime, and assignment counts within the structural
//     bounds;
//   - view conservation: after quiescence every rank's own view entry
//     returns to zero on both metrics — all accounted work was
//     executed and all accounted memory released (the same invariant a
//     post-run snapshot would observe).
func TestCrossRuntimeSolverEquivalence(t *testing.T) {
	for _, mech := range core.Mechanisms() {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			type obs struct {
				flops       float64
				decisions   int
				assignments int
				views       [][]core.Load
				procs       int
			}
			results := map[string]obs{}
			for rt, runner := range runners() {
				m := buildMapping(t, 8, 8, 8, 8)
				prm := solver.DefaultParams(mech, sched.Workload())
				app, opts, err := solver.NewApp(m, prm)
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				hr, err := runner.RunApp(m.Config.NProcs, app, opts)
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				out := app.Outcome(hr)
				if out.Err != nil {
					t.Fatalf("%s: %v", rt, out.Err)
				}
				res := out.Result.(*solver.Result)
				if res.Decisions != m.NumType2 {
					t.Fatalf("%s: %d decisions, want %d (one per Type 2 node)", rt, res.Decisions, m.NumType2)
				}
				results[rt] = obs{
					flops:       res.TotalExecutedFlops(),
					decisions:   res.Decisions,
					assignments: res.Assignments,
					views:       out.FinalViews,
					procs:       m.Config.NProcs,
				}
			}
			ref := results["sim"]
			for rt, o := range results {
				if o.decisions != ref.decisions {
					t.Errorf("%s: %d decisions vs sim %d", rt, o.decisions, ref.decisions)
				}
				if relDiff(o.flops, ref.flops) > 1e-9 {
					t.Errorf("%s: executed flops %v vs sim %v", rt, o.flops, ref.flops)
				}
				// Every decision commits at least one share and at most
				// n-1; the exact split shifts with view timing.
				if o.assignments < o.decisions || o.assignments > o.decisions*(o.procs-1) {
					t.Errorf("%s: %d assignments outside [%d, %d]", rt,
						o.assignments, o.decisions, o.decisions*(o.procs-1))
				}
				for r, view := range o.views {
					own := view[r]
					for metric, v := range own {
						if math.Abs(v) > 1e-3 {
							t.Errorf("%s: rank %d final own %s = %v, want ~0",
								rt, r, core.Metric(metric), v)
						}
					}
				}
			}
		})
	}
}

// TestSolverWl32ProcSimCell runs the solver-wl scenario at the paper's
// 32-processor scale on the reference simulator, one cell per
// mechanism, and checks the structure-determined invariants at a size
// the 8-proc suite cannot: identical decision counts and executed flops
// across mechanisms (both are fixed by the assembly tree, not by view
// timing), the Dijkstra–Scholten control budget, and every rank's own
// view returning to zero after quiescence. Gated out of -short: the
// 32-proc sim cells are the slow tail of this package.
func TestSolverWl32ProcSimCell(t *testing.T) {
	if testing.Short() {
		t.Skip("32-proc sim cells skipped in -short mode")
	}
	const procs = 32
	w, err := workload.Get("solver-wl")
	if err != nil {
		t.Fatal(err)
	}
	d := sim.NewWorkloadDriver()
	p := workload.Params{Procs: procs}
	var refFlops float64
	refDecisions := 0
	for i, mech := range core.Mechanisms() {
		rep, err := d.Run(w, mech, core.Config{NoMoreMasterOpt: true}, p)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		res, ok := rep.AppResult.(*solver.Result)
		if !ok {
			t.Fatalf("%s: AppResult is %T", mech, rep.AppResult)
		}
		if res.Decisions == 0 || res.MaxPeakMem <= 0 {
			t.Fatalf("%s: degenerate result %+v", mech, res)
		}
		if i == 0 {
			refFlops, refDecisions = res.TotalExecutedFlops(), res.Decisions
		} else {
			if res.Decisions != refDecisions {
				t.Errorf("%s: %d decisions, want %d (one per Type 2 node regardless of mechanism)",
					mech, res.Decisions, refDecisions)
			}
			if relDiff(res.TotalExecutedFlops(), refFlops) > 1e-9 {
				t.Errorf("%s: executed flops %v, want %v (structure-determined)",
					mech, res.TotalExecutedFlops(), refFlops)
			}
		}
		if want := rep.Counters.DataMsgs + 2*(procs-1); rep.Counters.CtrlMsgs != want {
			t.Errorf("%s: ctrl msgs %d, want data msgs %d + 2(n-1) = %d",
				mech, rep.Counters.CtrlMsgs, rep.Counters.DataMsgs, want)
		}
		for r, view := range rep.FinalViews {
			for metric, v := range view[r] {
				if math.Abs(v) > 1e-3 {
					t.Errorf("%s: rank %d final own %s = %v, want ~0",
						mech, r, core.Metric(metric), v)
				}
			}
		}
	}
}

// relDiff returns |a-b| / max(|a|, |b|, 1).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

// TestSolverScenarioMatrix sweeps the registered solver scenarios over
// every mechanism on all three runtime drivers — the same path `loadex
// run -scenario solver-wl -mech all -runtime all` exercises.
func TestSolverScenarioMatrix(t *testing.T) {
	drivers := []workload.Driver{
		sim.NewWorkloadDriver(), live.NewDriver(), xnet.NewDriver(xnet.Options{}),
	}
	p := workload.Params{Procs: 8}
	for _, name := range []string{"solver-wl", "solver-mem"} {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range core.Mechanisms() {
			for _, d := range drivers {
				rep, err := d.Run(w, mech, core.Config{NoMoreMasterOpt: true}, p)
				if err != nil {
					t.Fatalf("%s × %s × %s: %v", name, mech, d.Runtime(), err)
				}
				if rep.DecisionsTaken == 0 {
					t.Fatalf("%s × %s × %s: no decisions", name, mech, d.Runtime())
				}
				if rep.Counters.StateMsgs == 0 || rep.Counters.DataMsgs == 0 {
					t.Fatalf("%s × %s × %s: empty counters %+v", name, mech, d.Runtime(), rep.Counters)
				}
				res, ok := rep.AppResult.(*solver.Result)
				if !ok {
					t.Fatalf("%s × %s × %s: AppResult is %T", name, mech, d.Runtime(), rep.AppResult)
				}
				if res.MaxPeakMem <= 0 {
					t.Fatalf("%s × %s × %s: no peak memory", name, mech, d.Runtime())
				}
				if rep.Counters.Decisions != int64(rep.DecisionsTaken) {
					t.Fatalf("%s × %s × %s: counters decisions %d != report %d",
						name, mech, d.Runtime(), rep.Counters.Decisions, rep.DecisionsTaken)
				}
			}
		}
	}
}
