package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. It is used instead of math/rand so that simulations are
// reproducible across Go releases (math/rand's stream is not guaranteed
// stable for all helper methods) and so that independent sub-streams can be
// forked cheaply.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from the current one. The parent
// stream advances by one step.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ah * bl
	hi = ah*bh + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
