package sim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WorkloadDriver implements workload.Driver on the deterministic
// discrete-event simulator: rank programs advance from TryStart, work
// items travel the data channel and execute as simulated compute tasks
// whose duration is the nominal spin scaled by the executing rank's
// speed factor. Runs are fully deterministic for fixed inputs.
type WorkloadDriver struct {
	// Network configures the simulated interconnect.
	Network NetworkConfig
	// Trace, when set, receives one EvDecision event per committed
	// decision (Proc = deciding rank, At = virtual ready time, Value =
	// acquire→ready latency in virtual seconds) — the hook the trace
	// package's ring/counter tracers consume for verbose modes.
	Trace trace.Tracer
}

// NewWorkloadDriver returns a driver over the default interconnect.
func NewWorkloadDriver() *WorkloadDriver {
	return &WorkloadDriver{Network: DefaultNetwork()}
}

// Runtime implements workload.Driver.
func (d *WorkloadDriver) Runtime() string { return "sim" }

// Run implements workload.Driver.
func (d *WorkloadDriver) Run(w workload.Workload, mech core.Mech, cfg core.Config, p workload.Params) (*workload.Report, error) {
	if as, ok := w.(workload.AppScenario); ok {
		// Application scenarios (the solver) are hosted through the
		// application port instead of compiled to rank programs.
		return workload.RunAppScenario(&AppRunner{Network: d.Network}, as, mech, cfg, p)
	}
	progs, err := w.Programs(p)
	if err != nil {
		return nil, err
	}
	n := len(progs)
	rep := &workload.Report{Scenario: w.Name(), Runtime: d.Runtime(), Mech: mech, Procs: n}
	start := time.Now()

	eng := NewEngine()
	app := &wlApp{
		progs:     progs,
		pc:        make([]int, n),
		inflight:  make([]bool, n),
		executed:  make([]int64, n),
		busySince: make([]float64, n),
		spin:      Duration(p.Spin.Seconds()),
		topo:      cfg.Topo,
		rep:       rep,
		trace:     d.Trace,
		measuring: true,
	}
	for r := range app.busySince {
		app.busySince[r] = -1
	}
	// The network enforces the seam: a state message between
	// non-neighbors panics the simulation instead of silently passing.
	netCfg := d.Network
	netCfg.Topo = cfg.Topo
	app.rt = NewRuntime(eng, n, netCfg, app)
	for r := 0; r < n; r++ {
		exch, err := core.New(mech, n, r, cfg)
		if err != nil {
			return nil, err
		}
		app.exs = append(app.exs, exch)
		workload.InitExchanger(wlCtx{app, r}, exch, r, progs)
	}
	app.rt.Start()
	if err := eng.Run(); err != nil {
		return nil, err
	}
	for r := range app.pc {
		if app.pc[r] != len(progs[r].Steps) || app.inflight[r] {
			return nil, fmt.Errorf("sim: rank %d stalled at step %d/%d (engine drained)",
				r, app.pc[r], len(progs[r].Steps))
		}
	}
	rep.DecisionsTaken = len(rep.Records)
	rep.Executed = app.executed
	for r := 0; r < n; r++ {
		rep.Stats = append(rep.Stats, app.exs[r].Stats())
		rep.Counters.SnapshotRounds += core.SnapshotRoundsOf(rep.Stats[r])
	}
	// Freeze the counters before the final view acquisitions: the extra
	// snapshots are harness bookkeeping, not workload traffic.
	app.sampleCounters()
	app.measuring = false
	// Final coherent views: the engine drained, so all work executed and
	// all messages were delivered; a fresh acquisition per rank is exact.
	for r := 0; r < n; r++ {
		ctx := wlCtx{app, r}
		var view []core.Load
		got := false
		app.exs[r].Acquire(ctx, func() {
			view = app.exs[r].View().Snapshot()
			app.exs[r].Commit(ctx, nil)
			got = true
		})
		if err := eng.Run(); err != nil {
			return nil, err
		}
		if !got {
			return nil, fmt.Errorf("sim: final acquire on rank %d never completed", r)
		}
		rep.FinalViews = append(rep.FinalViews, view)
	}
	rep.Elapsed = time.Since(start)
	rep.SimEvents = eng.Steps()
	return rep, nil
}

// wlKindWork is the data-channel message kind carrying a work item.
const wlKindWork = 1000

// wlWorkPayload is one work item on the simulated data channel.
type wlWorkPayload struct {
	Load core.Load
	Dur  Duration
}

// wlApp drives rank programs through the Algorithm 1 loop.
type wlApp struct {
	rt       *Runtime
	exs      []core.Exchanger
	progs    []workload.Program
	pc       []int  // per-rank program counter
	inflight []bool // rank awaits a decision's view
	executed []int64
	assigned int64 // work items committed (leads Commit)
	done     int64 // work items completed (trails the load decrement)
	spin     Duration
	topo     *core.Topology // nil means the complete graph
	rep      *workload.Report
	trace    trace.Tracer

	// busySince[r] is the virtual time rank r became Busy, -1 when it is
	// not; measuring gates all counter accumulation so the final view
	// acquisitions stay out of the workload's numbers.
	busySince []float64
	measuring bool
}

// sampleCounters copies the network's per-kind tallies into the report.
// The simulated network already accounts every message for bandwidth
// modelling, so the sim counters are exact by construction.
func (a *wlApp) sampleCounters() {
	c := &a.rep.Counters
	state := a.rt.Net.Count(StateChannel)
	data := a.rt.Net.Count(DataChannel)
	c.StateMsgs, c.StateBytes = state.Messages, state.Bytes
	c.DataMsgs, c.DataBytes = data.Messages, data.Bytes
	for _, kind := range a.rt.Net.Kinds(StateChannel) {
		t := a.rt.Net.KindTally(StateChannel, kind)
		if c.PerKind == nil {
			c.PerKind = make(map[string]core.KindTally)
		}
		c.PerKind[core.KindName(kind)] = core.KindTally{Msgs: t.Messages, Bytes: t.Bytes}
	}
}

// busyCheck accumulates Busy (snapshot-blocked) time for rank r across
// state transitions, in virtual seconds.
func (a *wlApp) busyCheck(r int) {
	if !a.measuring {
		return
	}
	busy := a.exs[r].Busy()
	if busy && a.busySince[r] < 0 {
		a.busySince[r] = float64(a.rt.Now())
	} else if !busy && a.busySince[r] >= 0 {
		a.rep.Counters.BusyTime += float64(a.rt.Now()) - a.busySince[r]
		a.busySince[r] = -1
	}
}

// wlCtx adapts the runtime to core.Context for one rank.
type wlCtx struct {
	app  *wlApp
	rank int
}

func (c wlCtx) Rank() int    { return c.rank }
func (c wlCtx) N() int       { return len(c.app.exs) }
func (c wlCtx) Now() float64 { return float64(c.app.rt.Now()) }

func (c wlCtx) Send(to int, kind int, payload any, bytes float64) {
	c.app.rt.Send(&Message{
		From: c.rank, To: to, Channel: StateChannel,
		Kind: kind, Payload: payload, Bytes: bytes,
	})
}

func (c wlCtx) Broadcast(kind int, payload any, bytes float64) {
	for to := 0; to < len(c.app.exs); to++ {
		if to != c.rank {
			c.Send(to, kind, payload, bytes)
		}
	}
}

func (a *wlApp) HandleState(p *Proc, m *Message) {
	a.exs[p.ID].HandleMessage(wlCtx{a, p.ID}, m.From, m.Kind, m.Payload)
	a.busyCheck(p.ID)
}

func (a *wlApp) HandleData(p *Proc, m *Message) {
	w := m.Payload.(wlWorkPayload)
	ctx := wlCtx{a, p.ID}
	a.exs[p.ID].LocalChange(ctx, w.Load, true)
	a.rt.Compute(p, w.Dur, func() {
		neg := w.Load
		for i := range neg {
			neg[i] = -neg[i]
		}
		a.exs[p.ID].LocalChange(ctx, neg, true)
		a.executed[p.ID]++
		a.done++
	})
}

func (a *wlApp) Blocked(p *Proc) bool { return a.exs[p.ID].Busy() }

// TryStart advances rank p's program by one step.
func (a *wlApp) TryStart(p *Proc) bool {
	r := p.ID
	if a.inflight[r] || a.pc[r] >= len(a.progs[r].Steps) {
		return false
	}
	st := a.progs[r].Steps[a.pc[r]]
	ctx := wlCtx{a, r}
	switch st.Op {
	case workload.OpLocalChange:
		a.pc[r]++
		a.exs[r].LocalChange(ctx, st.Delta, false)
		return true
	case workload.OpNoMoreMaster:
		a.pc[r]++
		a.exs[r].NoMoreMaster(ctx)
		return true
	case workload.OpDecide:
		a.inflight[r] = true
		rec := workload.DecisionRecord{AssignedAtAcquire: a.assigned, ExecutedAtAcquire: a.done}
		acquireAt := float64(a.rt.Now())
		a.exs[r].Acquire(ctx, func() {
			if a.measuring {
				latency := float64(a.rt.Now()) - acquireAt
				a.rep.Counters.AddDecision(latency)
				if a.trace != nil {
					a.trace.Emit(trace.Event{
						At: float64(a.rt.Now()), Proc: r,
						Type: trace.EvDecision, Node: -1, Value: latency,
					})
				}
			}
			rec.AssignedAtReady, rec.ExecutedAtReady = a.assigned, a.done
			rec.Decision = core.PlanDecisionOn(a.topo, a.exs[r].View(), r, st.Slaves, st.Work)
			// The cumulative counter leads Commit so any snapshot cut
			// that observed this decision's credits is covered by a
			// later read (the conservation window relies on it).
			a.assigned += int64(len(rec.Assignments))
			a.exs[r].Commit(ctx, rec.Assignments)
			for _, asg := range rec.Assignments {
				dur := a.spin * Duration(a.progs[asg.Proc].SpeedFactor())
				a.rt.Send(&Message{
					From: r, To: int(asg.Proc), Channel: DataChannel,
					Kind: wlKindWork, Payload: wlWorkPayload{Load: asg.Delta, Dur: dur},
					Bytes: core.BytesWorkItem,
				})
			}
			a.pc[r]++
			a.inflight[r] = false
			a.rep.Records = append(a.rep.Records, rec)
			// A committed decision may enable the next step; the engine
			// has no pending event for an idle rank, so request a wakeup.
			a.rt.Wake(r)
		})
		a.busyCheck(r)
		return true
	}
	return false
}
