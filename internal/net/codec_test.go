package net

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/termdet"
	"repro/internal/workload"
)

// sampleMessages covers every wire type and every state kind, including
// edge values (empty assignment lists, negative loads, zero spin).
func sampleMessages() []Message {
	return []Message{
		{Type: TypeHello, From: 3},
		{Type: TypeWorkDone, From: 7},
		{Type: TypeDone, From: 0},
		{Type: TypeWork, From: 2, Load: core.Load{12.5, -3}, Spin: 1500000},
		{Type: TypeWork, From: 0, Load: core.Load{}, Spin: 0},
		{Type: TypeState, From: 1, Kind: int32(core.KindUpdate), Load: core.Load{100, 2048}},
		{Type: TypeState, From: 5, Kind: int32(core.KindNoMoreMaster)},
		{Type: TypeState, From: 4, Kind: int32(core.KindStartSnp), Req: 42},
		{Type: TypeState, From: 4, Kind: int32(core.KindSnp), Req: 42, Load: core.Load{-1.25, 7}},
		{Type: TypeState, From: 6, Kind: int32(core.KindEndSnp)},
		{Type: TypeState, From: 2, Kind: int32(core.KindMasterToSlave), Load: core.Load{30}},
		{Type: TypeState, From: 0, Kind: int32(core.KindMasterToAll), Assignments: []core.Assignment{
			{Proc: 1, Delta: core.Load{10, 1}},
			{Proc: 3, Delta: core.Load{20, 2}},
		}},
		{Type: TypeState, From: 0, Kind: int32(core.KindMasterToAll)},
		{Type: TypeState, From: 3, Kind: int32(core.KindGossip), Origin: 6, Seq: 12, TTL: 4, Load: core.Load{55, -1}},
		{Type: TypeState, From: 5, Kind: int32(core.KindDiffuse), Loads: []core.Load{{1, 2}, {}, {-3.5, 4}}},
		{Type: TypeState, From: 5, Kind: int32(core.KindDiffuse)},
		{Type: TypeData, From: 3, Data: workload.DataMsg{
			Kind: 101, Node: 17, Peer: 2, Count: 48, Work: 1.5e6, Size: 2304, Bytes: 18432,
		}},
		{Type: TypeData, From: 1, Data: workload.DataMsg{Kind: 105, Bytes: 32}},
		{Type: TypeData, From: 0, Data: workload.DataMsg{
			Kind: 102, Node: 5, Peer: -1, Count: 1, Size: -2.5,
		}},
		{Type: TypeCtrl, From: 2, Ctrl: termdet.Ctrl{Kind: termdet.CtrlAck}},
		{Type: TypeCtrl, From: 4, Ctrl: termdet.Ctrl{Kind: termdet.CtrlToken, Count: -3, Black: true}},
		{Type: TypeCtrl, From: 0, Ctrl: termdet.Ctrl{Kind: termdet.CtrlTerm}},
	}
}

// TestCtrlFrameSizeMatchesConstant pins core.BytesCtrl — what the
// runtimes without a real wire charge per control frame — to the
// binary codec's actual encoding.
func TestCtrlFrameSizeMatchesConstant(t *testing.T) {
	b, err := (BinaryCodec{}).Encode(nil, CtrlMessage(3, termdet.Ctrl{Kind: termdet.CtrlToken, Count: 9, Black: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != int(core.BytesCtrl) {
		t.Fatalf("encoded ctrl frame is %d bytes, core.BytesCtrl = %v", len(b), core.BytesCtrl)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec{}, JSONCodec{}} {
		t.Run(codec.Name(), func(t *testing.T) {
			for _, m := range sampleMessages() {
				b, err := codec.Encode(nil, m)
				if err != nil {
					t.Fatalf("encode %+v: %v", m, err)
				}
				got, err := codec.Decode(b)
				if err != nil {
					t.Fatalf("decode %+v: %v", m, err)
				}
				// Empty assignment/load lists may round-trip as nil.
				if len(got.Assignments) == 0 {
					got.Assignments = nil
				}
				if len(got.Loads) == 0 {
					got.Loads = nil
				}
				want := m
				if len(want.Assignments) == 0 {
					want.Assignments = nil
				}
				if len(want.Loads) == 0 {
					want.Loads = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
				}
			}
		})
	}
}

func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	codec := BinaryCodec{}
	valid, err := codec.Encode(nil, sampleMessages()[8]) // snp with load
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, not panic.
	for i := 0; i < len(valid); i++ {
		if _, err := codec.Decode(valid[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := codec.Decode(append(append([]byte{}, valid...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown type / kind.
	if _, err := codec.Decode([]byte{0xff, 0, 0, 0, 1}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := codec.Decode([]byte{byte(TypeState), 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBinaryDecodeBoundsAssignmentCount(t *testing.T) {
	// A master_to_all frame claiming 2^31 assignments but carrying none
	// must error without allocating.
	b := []byte{byte(TypeState), 0, 0, 0, 0, 0, 0, 0, byte(core.KindMasterToAll), 0x7f, 0xff, 0xff, 0xff}
	if _, err := (BinaryCodec{}).Decode(b); err == nil {
		t.Fatal("hostile assignment count accepted")
	}
	// Same for a diffuse frame's load-vector count.
	b = []byte{byte(TypeState), 0, 0, 0, 0, 0, 0, 0, byte(core.KindDiffuse), 0x7f, 0xff, 0xff, 0xff}
	if _, err := (BinaryCodec{}).Decode(b); err == nil {
		t.Fatal("hostile load vector count accepted")
	}
}

func TestStateMessageRoundTrip(t *testing.T) {
	cases := []struct {
		kind    int
		payload any
	}{
		{core.KindUpdate, core.UpdatePayload{Load: core.Load{5, 6}}},
		{core.KindMasterToAll, core.MasterToAllPayload{Assignments: []core.Assignment{{Proc: 2, Delta: core.Load{9}}}}},
		{core.KindNoMoreMaster, nil},
		{core.KindStartSnp, core.StartSnpPayload{Req: 9}},
		{core.KindSnp, core.SnpPayload{Req: 9, Load: core.Load{1, 2}}},
		{core.KindEndSnp, nil},
		{core.KindMasterToSlave, core.MasterToSlavePayload{Delta: core.Load{4}}},
		{core.KindGossip, core.GossipPayload{Origin: 2, Seq: 7, TTL: 3, Load: core.Load{11, -0.5}}},
		{core.KindDiffuse, core.DiffusePayload{Loads: []core.Load{{1}, {2, 3}}}},
	}
	for _, c := range cases {
		m, err := StateMessage(3, c.kind, c.payload)
		if err != nil {
			t.Fatalf("%s: %v", core.KindName(c.kind), err)
		}
		got := m.StatePayload()
		if !reflect.DeepEqual(got, c.payload) {
			t.Fatalf("%s: payload %#v, want %#v", core.KindName(c.kind), got, c.payload)
		}
	}
	// A payload type the wire cannot carry fails loudly.
	if _, err := StateMessage(0, core.KindUpdate, "bogus"); err == nil {
		t.Fatal("bogus payload accepted")
	}
	if _, err := StateMessage(0, 999, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-frame")}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %q, want %q", got, want)
		}
		scratch = got
	}
	// Oversized inbound frame header is rejected before allocation.
	var huge bytes.Buffer
	huge.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&huge, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
