// Package sim implements a deterministic discrete-event simulation (DES)
// kernel for asynchronous message-passing distributed systems.
//
// The kernel reproduces the execution model of the paper "A study of various
// load information exchange mechanisms for a distributed application using
// dynamic scheduling" (Guermouche & L'Excellent, RR-5478, 2005):
//
//   - N processes communicate only by asynchronous message passing;
//   - two logical channels exist between every pair of processes: a
//     prioritized channel for state-information messages and a channel for
//     everything else (tasks, data);
//   - in the default (single-threaded) model a process cannot treat a
//     message and compute simultaneously: messages queue while a task runs;
//   - in the threaded model (paper §4.5) a helper thread polls the
//     state-information channel every PollPeriod of virtual time, and can
//     pause the computing thread while a distributed snapshot is ongoing.
//
// All behaviour is deterministic: virtual time is a float64 number of
// seconds, ties between events are broken by insertion order, and all
// randomness flows from an explicitly seeded generator.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration = Time

// Common durations, for readability at call sites.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// String formats the time with microsecond resolution, e.g. "1.234567s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t))
}

// AsStdDuration converts a virtual duration to a time.Duration, saturating
// on overflow. It is used only for reporting.
func AsStdDuration(d Duration) time.Duration {
	return time.Duration(float64(d) * float64(time.Second))
}
