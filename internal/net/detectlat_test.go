package net

import (
	"testing"
	"time"
)

// TestAppBindingDetectLatencyLatched pins the race fix on the TCP app
// host: detection latency is latched at the termination broadcast's
// CAS, so a straggling lastDoneNS store after termination cannot zero
// it, and report-time reads are stable.
func TestAppBindingDetectLatencyLatched(t *testing.T) {
	b := &appBinding{}
	done := time.Now().Add(-50 * time.Millisecond).UnixNano()
	b.lastDoneNS.Store(done)
	b.markTerm()
	lat := b.detectLatency()
	if lat < 0.045 {
		t.Fatalf("latched latency %.3fs, want >= ~0.05s", lat)
	}

	// The race: a compute completion lands after the broadcast. The
	// old report-time diff was zeroed by this; the latch must hold.
	b.lastDoneNS.Store(time.Now().Add(time.Hour).UnixNano())
	if got := b.detectLatency(); got != lat {
		t.Fatalf("straggler changed latency: %.6f -> %.6f", lat, got)
	}

	// Second broadcast: first CAS wins, no re-latch.
	b.markTerm()
	if got := b.detectLatency(); got != lat {
		t.Fatalf("second markTerm re-latched: %.6f -> %.6f", lat, got)
	}
}

func TestAppBindingDetectLatencyUnobserved(t *testing.T) {
	b := &appBinding{}
	b.markTerm()
	if got := b.detectLatency(); got != 0 {
		t.Fatalf("latency %.6f with no compute observed, want 0", got)
	}
}
