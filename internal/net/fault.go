package net

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/chaos"
)

// faultWriter mirrors the simulator's fault injection on the real TCP
// path: it sits between a writer goroutine's bufio.Writer and the peer
// connection, re-parses the batched byte stream back into length-
// prefixed frames, and applies the chaos plan to each frame — extra
// delay, probabilistic loss, adjacent-frame reordering within a batch,
// and link severing once an endpoint's crash time passes. The
// handshake's Hello frames never pass through it (Start writes them to
// the raw connection before the writer goroutine exists), so a plan can
// never fault the mesh setup itself.
//
// Reordering is bounded to one Write batch on purpose: holding a frame
// back across batches could park the last acknowledgment of a run
// indefinitely, turning a delivery fault into a harness hang.
type faultWriter struct {
	conn        net.Conn
	plan        *chaos.Plan
	rng         *chaos.RNG
	start       time.Time
	local, peer int
	quit        <-chan struct{}

	// acc accumulates partial frames across Write calls (a frame larger
	// than the bufio buffer arrives split).
	acc     []byte
	timer   *time.Timer // reused stall timer
	severed bool
}

// newFaultWriter wraps one directed link. The random stream is derived
// from the plan seed and the link coordinates, so forked processes
// fault deterministically without shared state.
func newFaultWriter(conn net.Conn, plan *chaos.Plan, local, peer int, start time.Time, quit <-chan struct{}) *faultWriter {
	return &faultWriter{
		conn: conn, plan: plan,
		rng:   plan.RNGFor(local, peer),
		start: start, local: local, peer: peer, quit: quit,
	}
}

// Write implements io.Writer over whole frames: complete frames in the
// batch are faulted and forwarded, a trailing partial frame waits in
// the accumulator for the rest of its bytes.
func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.severed {
		return 0, fw.severError()
	}
	fw.acc = append(fw.acc, p...)
	frames := fw.pending()
	if fw.plan.Reorder {
		for i := 0; i+1 < len(frames); i++ {
			if fw.rng.Float64() < 0.5 {
				frames[i], frames[i+1] = frames[i+1], frames[i]
			}
		}
	}
	for _, f := range frames {
		if err := fw.emit(f); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// pending extracts every complete frame from the accumulator, leaving
// the trailing partial one (if any) behind.
func (fw *faultWriter) pending() [][]byte {
	var frames [][]byte
	off := 0
	for {
		rest := fw.acc[off:]
		if len(rest) < FrameHeaderBytes {
			break
		}
		total := FrameHeaderBytes + int(binary.BigEndian.Uint32(rest))
		if len(rest) < total {
			break
		}
		frames = append(frames, append([]byte(nil), rest[:total]...))
		off += total
	}
	if off > 0 {
		// Re-copy the (typically tiny) remainder so the accumulator does
		// not pin every batch's backing array.
		fw.acc = append([]byte(nil), fw.acc[off:]...)
	}
	return frames
}

// emit applies the plan to one frame and forwards the survivors.
func (fw *faultWriter) emit(f []byte) error {
	if fw.plan.CrashedAt(time.Since(fw.start).Seconds(), fw.local, fw.peer) {
		fw.severed = true
		fw.conn.Close()
		return fw.severError()
	}
	if fw.plan.Drops(frameClass(f[FrameHeaderBytes:]), fw.rng) {
		return nil
	}
	stall := time.Duration(fw.plan.DelayFor(fw.rng) * float64(time.Second))
	if fw.plan.SlowsLink(fw.local, fw.peer) && fw.plan.SlowDelay > 0 {
		stall += time.Duration(fw.plan.SlowDelay * float64(time.Second))
	}
	if stall > 0 {
		if fw.timer == nil {
			fw.timer = time.NewTimer(stall)
		} else {
			fw.timer.Reset(stall)
		}
		select {
		case <-fw.timer.C:
		case <-fw.quit:
			// Shutdown: stop stalling but still write through, so the
			// run's final frames (Done announcements, trailing acks)
			// land before the connection closes.
			if !fw.timer.Stop() {
				<-fw.timer.C
			}
		}
	}
	_, err := fw.conn.Write(f)
	return err
}

func (fw *faultWriter) severError() error {
	return fmt.Errorf("net: chaos plan %q severed link %d->%d (rank %d crashed)",
		fw.plan.Name, fw.local, fw.peer, fw.plan.CrashRank)
}

// frameClass maps an encoded frame body onto the chaos traffic classes,
// for both codecs: the binary codec leads with the MsgType tag byte,
// the JSON codec with `{"type":N`. Anything unrecognized — handshake
// and quiescence bookkeeping in particular — is ClassOther, which loss
// never touches.
func frameClass(body []byte) chaos.Class {
	if len(body) == 0 {
		return chaos.ClassOther
	}
	if body[0] == '{' {
		const prefix = `{"type":`
		if len(body) > len(prefix) && string(body[:len(prefix)]) == prefix {
			// The type number may be multi-digit (job-tagged frames).
			n := 0
			for _, c := range body[len(prefix):] {
				if c < '0' || c > '9' || n > 255 {
					break
				}
				n = n*10 + int(c-'0')
			}
			return classOfType(MsgType(n))
		}
		return chaos.ClassOther
	}
	return classOfType(MsgType(body[0]))
}

// classOfType buckets the wire message types.
func classOfType(t MsgType) chaos.Class {
	switch jobBase(t) {
	case TypeState:
		return chaos.ClassState
	case TypeWork, TypeData:
		return chaos.ClassData
	case TypeCtrl:
		return chaos.ClassCtrl
	}
	return chaos.ClassOther
}
