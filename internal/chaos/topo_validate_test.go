package chaos

import "testing"

// sparseRun is a minimal 4-rank ring trace satisfying every invariant:
// state messages travel ring edges only and the one decision selects
// the master's least-loaded neighbors.
func sparseRun() []Event {
	return []Event{
		{Ev: EvMeta, N: 4, Scenario: "s", Mech: "gossip", Topo: "ring"},
		{Ev: EvState, Rank: 0, Peer: 1, Kind: 8},
		{Ev: EvState, Rank: 0, Peer: 3, Kind: 8},
		{Ev: EvState, Rank: 2, Peer: 1, Kind: 8},
		{Ev: EvSend, Rank: 0, Peer: 1, Kind: 1, Work: 2},
		{Ev: EvRecv, Rank: 1, Peer: 0, Kind: 1, Work: 2},
		{Ev: EvStart, Rank: 1, Spin: 0.5},
		{Ev: EvDone, Rank: 1},
		// Rank 0's neighbors on the 4-ring are {1, 3}; both are lighter
		// than the non-neighbor 2, which a full-graph selection would
		// also have taken.
		{Ev: EvDecide, Rank: 0, View: []float64{9, 1, 0, 2}, Sel: []int{1, 3}},
		{Ev: EvFinal, Rank: 0, Executed: 0},
		{Ev: EvFinal, Rank: 1, Executed: 1},
		{Ev: EvFinal, Rank: 2, Executed: 0},
		{Ev: EvFinal, Rank: 3, Executed: 0},
	}
}

func TestValidateSparseTopologyClean(t *testing.T) {
	r := Validate(sparseRun())
	if !r.OK() {
		t.Fatalf("clean sparse run flagged: %v", r.Violations)
	}
	if r.Topo != "ring" || r.States != 3 {
		t.Fatalf("bad tallies: topo=%q states=%d", r.Topo, r.States)
	}
}

func TestValidateSparseTopologyViolations(t *testing.T) {
	cases := []struct {
		name, check string
		mutate      func([]Event) []Event
	}{
		{"state across a non-edge", "topology", func(e []Event) []Event {
			return append(e, Event{Ev: EvState, Rank: 0, Peer: 2, Kind: 8})
		}},
		{"selection outside the neighborhood", "selection", func(e []Event) []Event {
			// Rank 2 is the globally least-loaded but not a neighbor of 0.
			e[8].Sel = []int{1, 2}
			return e
		}},
		{"unbuildable topology", "meta", func(e []Event) []Event {
			e[0].Topo = "moebius"
			return e
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Validate(tc.mutate(sparseRun()))
			if r.OK() {
				t.Fatalf("violation not detected")
			}
			if !violated(r, tc.check) {
				t.Fatalf("want a %q violation, got %v", tc.check, r.Violations)
			}
		})
	}
}

// TestValidateFullTopologyUnrestricted pins the no-op edge of the seam:
// a run whose meta names the full topology validates exactly like one
// naming none — any state route and any least-loaded selection pass.
func TestValidateFullTopologyUnrestricted(t *testing.T) {
	e := sparseRun()
	e[0].Topo = "full"
	e = append(e, Event{Ev: EvState, Rank: 0, Peer: 2, Kind: 8})
	// With every rank a candidate, the least-loaded pair is {2, 1}.
	e[8].Sel = []int{1, 2}
	if r := Validate(e); !r.OK() {
		t.Fatalf("full-topology run flagged: %v", r.Violations)
	}
}
