package ordering

import (
	"sort"

	"repro/internal/sparse"
)

// ndLeafSize is the subgraph size below which recursion stops and the
// vertices are ordered directly.
const ndLeafSize = 48

// NestedDissection computes an elimination order by recursive bisection.
// When the graph carries vertex coordinates (mesh generators attach them)
// the bisection is geometric: split the widest bounding-box axis at the
// median, take as separator the boundary layer of one side. Without
// coordinates it falls back to level-structure bisection from a
// pseudo-peripheral vertex. Separators are ordered last, which yields the
// wide, well-balanced assembly trees that METIS produces on mesh problems.
func NestedDissection(g *sparse.Graph) Perm {
	n := g.N
	order := make(Perm, 0, n)
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	inSet := make([]int32, n) // stamp marking current vertex subset
	var stamp int32
	var dissect func(vs []int32)
	dissect = func(vs []int32) {
		if len(vs) <= ndLeafSize {
			order = append(order, vs...)
			return
		}
		var a, b []int32
		if g.Coords != nil {
			a, b = geometricSplit(g, vs)
		} else {
			a, b = levelSplit(g, vs)
		}
		if len(a) == 0 || len(b) == 0 {
			order = append(order, vs...)
			return
		}
		// Separator: members of a adjacent to b.
		stamp++
		for _, v := range b {
			inSet[v] = stamp
		}
		var core, sep []int32
		for _, v := range a {
			onBoundary := false
			for _, u := range g.AdjOf(int(v)) {
				if inSet[u] == stamp {
					onBoundary = true
					break
				}
			}
			if onBoundary {
				sep = append(sep, v)
			} else {
				core = append(core, v)
			}
		}
		if len(sep) == len(vs) || (len(core) == 0 && len(b) == len(vs)) {
			order = append(order, vs...)
			return
		}
		dissect(core)
		dissect(b)
		order = append(order, sep...)
	}
	dissect(verts)
	return order
}

// geometricSplit halves vs along the widest coordinate axis at the median.
func geometricSplit(g *sparse.Graph, vs []int32) (a, b []int32) {
	var lo, hi [3]float64
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = 1e300, -1e300
	}
	for _, v := range vs {
		c := g.Coords[v]
		for d := 0; d < 3; d++ {
			if c[d] < lo[d] {
				lo[d] = c[d]
			}
			if c[d] > hi[d] {
				hi[d] = c[d]
			}
		}
	}
	axis := 0
	for d := 1; d < 3; d++ {
		if hi[d]-lo[d] > hi[axis]-lo[axis] {
			axis = d
		}
	}
	sorted := append([]int32(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := g.Coords[sorted[i]][axis], g.Coords[sorted[j]][axis]
		if ci != cj {
			return ci < cj
		}
		return sorted[i] < sorted[j]
	})
	mid := len(sorted) / 2
	return sorted[:mid], sorted[mid:]
}

// levelSplit bisects vs by the level structure of a BFS from a
// pseudo-peripheral vertex restricted to vs.
func levelSplit(g *sparse.Graph, vs []int32) (a, b []int32) {
	member := make(map[int32]bool, len(vs))
	for _, v := range vs {
		member[v] = true
	}
	root := pseudoPeripheral(g, vs[0], member)
	level := map[int32]int{root: 0}
	queue := []int32{root}
	maxLevel := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.AdjOf(int(v)) {
			if member[u] {
				if _, ok := level[u]; !ok {
					level[u] = level[v] + 1
					if level[u] > maxLevel {
						maxLevel = level[u]
					}
					queue = append(queue, u)
				}
			}
		}
	}
	// Unreached vertices (other components) join side b.
	half := len(level) / 2
	cum, cut := 0, maxLevel/2
	counts := make([]int, maxLevel+1)
	for _, l := range level {
		counts[l]++
	}
	for l := 0; l <= maxLevel; l++ {
		cum += counts[l]
		if cum >= half {
			cut = l
			break
		}
	}
	for _, v := range vs {
		if l, ok := level[v]; ok && l <= cut {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	return a, b
}

// pseudoPeripheral finds a vertex of (approximately) maximal eccentricity
// within the member set by repeated BFS.
func pseudoPeripheral(g *sparse.Graph, start int32, member map[int32]bool) int32 {
	root := start
	bestDepth := -1
	for iter := 0; iter < 4; iter++ {
		depth := map[int32]int{root: 0}
		queue := []int32{root}
		last := root
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			last = v
			for _, u := range g.AdjOf(int(v)) {
				if member[u] {
					if _, ok := depth[u]; !ok {
						depth[u] = depth[v] + 1
						queue = append(queue, u)
					}
				}
			}
		}
		if depth[last] <= bestDepth {
			break
		}
		bestDepth = depth[last]
		root = last
	}
	return root
}

// RCM computes a reverse Cuthill-McKee order: a bandwidth-reducing
// breadth-first order from a pseudo-peripheral root, neighbours visited by
// increasing degree, then reversed. Useful as a baseline ordering and for
// banded problems.
func RCM(g *sparse.Graph) Perm {
	n := g.N
	visited := make([]bool, n)
	order := make(Perm, 0, n)
	all := map[int32]bool{}
	for v := int32(0); v < int32(n); v++ {
		all[v] = true
	}
	for s := int32(0); s < int32(n); s++ {
		if visited[s] {
			continue
		}
		root := pseudoPeripheral(g, s, all)
		if visited[root] {
			root = s
		}
		visited[root] = true
		queue := []int32{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			var nbrs []int32
			for _, u := range g.AdjOf(int(v)) {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool {
				di, dj := g.Degree(int(nbrs[i])), g.Degree(int(nbrs[j]))
				if di != dj {
					return di < dj
				}
				return nbrs[i] < nbrs[j]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
