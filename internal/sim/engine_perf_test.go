package sim

import (
	"testing"
)

// TestEngineEventAllocs pins the pooled engine's allocation budget: with
// a warm free list, one scheduled-and-fired event costs at most one
// allocation — and in practice zero, since At recycles event records
// and the heap/fast-lane arrays keep their capacity. The budget of one
// leaves room for an occasional slice growth without letting a
// per-event allocation regression (the pre-pooling behavior) back in.
func TestEngineEventAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, lane := range []struct {
		name  string
		delay Duration
	}{
		{"heap", 1}, // future events ride the priority queue
		{"nowQ", 0}, // same-instant events ride the FIFO fast lane
	} {
		t.Run(lane.name, func(t *testing.T) {
			eng := NewEngine()
			fn := func() {}
			// Warm the free list and array capacities.
			for i := 0; i < 256; i++ {
				eng.After(lane.delay, fn)
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				eng.After(lane.delay, fn)
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 1 {
				t.Errorf("schedule+fire: %v allocs/op, want <= 1", allocs)
			}
		})
	}
}

// TestEngineMassCancelCompacts drives repeated waves of
// schedule-then-cancel through the engine and checks that neither
// Pending() nor the resident heap grows with the number of canceled
// events: lazy cancellation must compact once canceled events outnumber
// live ones, so a mass cancel (a chaos plan killing a rank with
// thousands of queued deliveries) cannot hold the heap's memory
// hostage.
func TestEngineMassCancelCompacts(t *testing.T) {
	eng := NewEngine()
	fired := 0
	fn := func() { fired++ }
	const waves, perWave = 50, 1000
	for w := 0; w < waves; w++ {
		handles := make([]EventHandle, 0, perWave)
		for i := 0; i < perWave; i++ {
			handles = append(handles, eng.At(Time(w+1), fn))
		}
		// Cancel all but one event of the wave.
		for _, h := range handles[1:] {
			eng.Cancel(h)
		}
		if got, want := eng.Pending(), w+1; got != want {
			t.Fatalf("wave %d: Pending() = %d, want %d", w, got, want)
		}
		// The resident heap must stay proportional to the live events,
		// not to the total ever canceled: compaction keeps canceled
		// residents at most half the heap (plus the trigger threshold).
		if resident := len(eng.events); resident > 2*(w+1)+130 {
			t.Fatalf("wave %d: %d resident events for %d live — compaction did not run", w, resident, w+1)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != waves {
		t.Fatalf("fired %d events, want %d (one survivor per wave)", fired, waves)
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", eng.Pending())
	}
}

// TestEngineCancelAfterFireIsNoOp pins the generation counter: a handle
// to a fired event must not cancel the recycled event record that took
// its slot.
func TestEngineCancelAfterFireIsNoOp(t *testing.T) {
	eng := NewEngine()
	h1 := eng.At(1, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The record behind h1 is now on the free list; schedule again so it
	// is recycled with a bumped generation.
	fired := false
	h2 := eng.At(2, func() { fired = true })
	if h2.e != h1.e {
		t.Skip("free list did not recycle the record (allocator change?)")
	}
	eng.Cancel(h1) // stale handle: must not touch the new scheduling
	if h1.Valid() {
		t.Error("stale handle still reports valid")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

// BenchmarkEngine measures raw schedule+fire throughput on both lanes:
// the heap path (future events) and the same-instant fast lane that
// carries the bulk of a big simulation's wakeups.
func BenchmarkEngine(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		eng := NewEngine()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.After(1, fn)
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nowQ", func(b *testing.B) {
		eng := NewEngine()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.After(0, fn)
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("heap-depth-1024", func(b *testing.B) {
		// Schedule+fire with 1024 events resident, the realistic queue
		// depth of a large simulation: each op pays real sift costs.
		eng := NewEngine()
		fn := func() {}
		for i := 0; i < 1024; i++ {
			eng.After(Duration(1e9+i), fn)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.After(1, fn)
			if err := eng.RunUntil(eng.Now() + 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
