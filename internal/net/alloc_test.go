package net

import (
	"fmt"
	"testing"
)

// TestBinaryCodecZeroAlloc pins the zero-allocation wire path: once the
// encode buffer and the decode target's payload slices are warm, Encode
// and DecodeInto must allocate nothing for any message type — the
// regression guard behind the node reader/writer loops' steady state.
func TestBinaryCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	codec := BinaryCodec{}
	for i, m := range sampleMessages() {
		m := m
		t.Run(fmt.Sprintf("%02d_%s", i, m.Type), func(t *testing.T) {
			buf, err := codec.Encode(nil, m)
			if err != nil {
				t.Fatal(err)
			}
			var dec Message
			if err := codec.DecodeInto(buf, &dec); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				var err error
				buf, err = codec.Encode(buf[:0], m)
				if err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("Encode: %v allocs/op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if err := codec.DecodeInto(buf, &dec); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("DecodeInto: %v allocs/op, want 0", allocs)
			}
		})
	}
}
