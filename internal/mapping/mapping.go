// Package mapping performs the static phase of MUMPS scheduling (paper
// §4.1): Geist-Ng detection of sequential leaf subtrees, LPT assignment of
// subtrees to processors, node-type classification (Type 1/2/3) and the
// proportional mapping of Type 2 masters, which "only aims at balancing
// the memory of the corresponding factors".
package mapping

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Config tunes the static mapping.
type Config struct {
	// NProcs is the number of processes the application runs on.
	NProcs int
	// Type2MinFront: fronts smaller than this are never parallelized.
	Type2MinFront int32
	// Type2CostFrac: a node above the subtree layer becomes Type 2 when
	// its cost exceeds Type2CostFrac·TotalCost/NProcs. More processors ⇒
	// lower threshold ⇒ more dynamic decisions, matching the growth of
	// Table 3.
	Type2CostFrac float64
	// Type3MinFront: the root becomes Type 3 (2D static) above this size
	// when NProcs >= 4.
	Type3MinFront int32
	// SubtreesPerProc is the Geist-Ng target number of sequential leaf
	// subtrees per processor.
	SubtreesPerProc int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(nprocs int) Config {
	return Config{
		NProcs:          nprocs,
		Type2MinFront:   48,
		Type2CostFrac:   0.02,
		Type3MinFront:   192,
		SubtreesPerProc: 4,
	}
}

// Mapping is the result of the static phase.
type Mapping struct {
	Tree   *tree.Tree
	Config Config
	// Master[id] is the statically chosen processor of node id: the owner
	// for Type 1 / subtree nodes, the master for Type 2/3 nodes.
	Master []int32
	// SubtreeRoots lists the Geist-Ng layer roots.
	SubtreeRoots []int32
	// SubtreeProc[k] is the processor of SubtreeRoots[k].
	SubtreeProc []int32
	// InitialLoad[p] is the cost of all subtrees assigned to p — the
	// initial workload of the workload-based strategy (§4.2.2).
	InitialLoad []float64
	// NumType2 is the number of dynamic decisions (Table 3).
	NumType2 int
	// Candidates[id], for a Type 2 node, lists the processors eligible
	// as its slaves: the node's proportional-mapping interval widened to
	// a workable minimum. Used by the partial-snapshot extension (§5) to
	// scope the demand-driven view to the processes that can actually be
	// selected.
	Candidates [][]int32
}

// Map computes the static mapping of t onto cfg.NProcs processors.
func Map(t *tree.Tree, cfg Config) (*Mapping, error) {
	if cfg.NProcs <= 0 {
		return nil, fmt.Errorf("mapping: need at least one processor")
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("mapping: empty tree")
	}
	m := &Mapping{
		Tree:        t,
		Config:      cfg,
		Master:      make([]int32, len(t.Nodes)),
		InitialLoad: make([]float64, cfg.NProcs),
	}

	m.findSubtreeLayer()
	m.assignSubtrees()
	m.classifyTypes()
	m.mapMasters()

	for i := range t.Nodes {
		if t.Nodes[i].Type == tree.Type2 {
			m.NumType2++
		}
	}
	return m, nil
}

// findSubtreeLayer performs the Geist-Ng construction: starting from the
// roots, repeatedly split the most expensive subtree until there are
// enough subtrees and none dominates the average processor share.
func (m *Mapping) findSubtreeLayer() {
	t := m.Tree
	target := m.Config.SubtreesPerProc * m.Config.NProcs
	if target < m.Config.NProcs {
		target = m.Config.NProcs
	}
	maxShare := t.TotalCost / float64(m.Config.NProcs)

	layer := append([]int32(nil), t.Roots...)
	// Priority: largest subtree cost first.
	costOf := func(id int32) float64 { return t.Nodes[id].SubtreeCost }
	for {
		sort.Slice(layer, func(i, j int) bool { return costOf(layer[i]) > costOf(layer[j]) })
		if len(layer) == 0 {
			break
		}
		big := layer[0]
		needSplit := len(layer) < target || costOf(big) > 0.8*maxShare
		if !needSplit || len(t.Nodes[big].Children) == 0 {
			// Also try splitting if the largest is a leaf but others are
			// splittable and we lack subtrees.
			if len(layer) >= target || allLeaves(t, layer) {
				break
			}
			// Move the largest splittable node to front.
			idx := -1
			for i, id := range layer {
				if len(t.Nodes[id].Children) > 0 {
					idx = i
					break
				}
			}
			if idx < 0 {
				break
			}
			big = layer[idx]
			layer = append(layer[:idx], layer[idx+1:]...)
			layer = append(layer, t.Nodes[big].Children...)
			continue
		}
		layer = layer[1:]
		layer = append(layer, t.Nodes[big].Children...)
	}
	sort.Slice(layer, func(i, j int) bool { return layer[i] < layer[j] })
	m.SubtreeRoots = layer

	// Mark subtree membership.
	for i := range t.Nodes {
		t.Nodes[i].Subtree = -1
	}
	for k, r := range m.SubtreeRoots {
		markSubtree(t, r, int32(k))
	}
}

func allLeaves(t *tree.Tree, ids []int32) bool {
	for _, id := range ids {
		if len(t.Nodes[id].Children) > 0 {
			return false
		}
	}
	return true
}

func markSubtree(t *tree.Tree, root, k int32) {
	stack := []int32{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.Nodes[v].Subtree = k
		stack = append(stack, t.Nodes[v].Children...)
	}
}

// assignSubtrees distributes subtrees over processors by LPT (largest
// processing time first), minimizing the worst initial load.
func (m *Mapping) assignSubtrees() {
	t := m.Tree
	m.SubtreeProc = make([]int32, len(m.SubtreeRoots))
	order := make([]int, len(m.SubtreeRoots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca := t.Nodes[m.SubtreeRoots[order[a]]].SubtreeCost
		cb := t.Nodes[m.SubtreeRoots[order[b]]].SubtreeCost
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	for _, k := range order {
		best := 0
		for p := 1; p < m.Config.NProcs; p++ {
			if m.InitialLoad[p] < m.InitialLoad[best] {
				best = p
			}
		}
		m.SubtreeProc[k] = int32(best)
		m.InitialLoad[best] += t.Nodes[m.SubtreeRoots[k]].SubtreeCost
	}
	// Every node inside a subtree is owned by the subtree's processor.
	for i := range t.Nodes {
		if s := t.Nodes[i].Subtree; s >= 0 {
			m.Master[i] = m.SubtreeProc[s]
		}
	}
}

// classifyTypes sets the parallelism type of every node above the layer.
func (m *Mapping) classifyTypes() {
	t := m.Tree
	cfg := m.Config
	costTh := cfg.Type2CostFrac * t.TotalCost / float64(cfg.NProcs)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.Type = tree.Type1
		if n.Subtree >= 0 || cfg.NProcs == 1 {
			continue
		}
		if n.Nfront >= cfg.Type2MinFront && n.Cost > costTh {
			n.Type = tree.Type2
		}
	}
	// The top root becomes Type 3 when large enough (2D static, no
	// dynamic decision).
	if cfg.NProcs >= 4 {
		var top int32 = -1
		for _, r := range t.Roots {
			if top < 0 || t.Nodes[r].SubtreeCost > t.Nodes[top].SubtreeCost {
				top = r
			}
		}
		if top >= 0 && t.Nodes[top].Subtree < 0 && t.Nodes[top].Nfront >= cfg.Type3MinFront {
			t.Nodes[top].Type = tree.Type3
		}
	}
}

// mapMasters performs proportional mapping of the upper tree: each node
// inherits a processor interval from its parent, children split the
// interval proportionally to subtree cost, and the node's master is the
// interval processor currently holding the least factor memory (the
// memory-balancing criterion of §4.1).
func (m *Mapping) mapMasters() {
	t := m.Tree
	np := m.Config.NProcs
	factorMem := make([]float64, np)
	m.Candidates = make([][]int32, len(t.Nodes))

	type span struct{ lo, hi int32 } // [lo, hi)
	spans := make([]span, len(t.Nodes))
	for _, r := range t.Roots {
		spans[r] = span{0, int32(np)}
	}
	// Top-down: parents before children (reverse topological order).
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		if n.Subtree >= 0 {
			continue // subtree nodes already owned
		}
		sp := spans[n.ID]
		if sp.hi <= sp.lo {
			sp.hi = sp.lo + 1
			if sp.hi > int32(np) {
				sp.lo, sp.hi = int32(np)-1, int32(np)
			}
			spans[n.ID] = sp
		}
		// Master: least factor memory within the span.
		best := sp.lo
		for p := sp.lo; p < sp.hi; p++ {
			if factorMem[p] < factorMem[best] {
				best = p
			}
		}
		m.Master[n.ID] = best
		factorMem[best] += tree.FactorEntries(n.Nfront, n.Npiv, t.Sym)
		if n.Type == tree.Type2 {
			m.Candidates[n.ID] = candidatesAround(sp.lo, sp.hi, int32(np), best)
		}

		// Split the span among children proportionally to subtree cost.
		kids := n.Children
		if len(kids) == 0 {
			continue
		}
		total := 0.0
		for _, c := range kids {
			total += t.Nodes[c].SubtreeCost
		}
		width := float64(sp.hi - sp.lo)
		acc := 0.0
		for _, c := range kids {
			frac := 1.0 / float64(len(kids))
			if total > 0 {
				frac = t.Nodes[c].SubtreeCost / total
			}
			lo := sp.lo + int32(acc*width)
			acc += frac
			hi := sp.lo + int32(acc*width+0.5)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > sp.hi {
				hi = sp.hi
			}
			if lo >= sp.hi {
				lo, hi = sp.hi-1, sp.hi
			}
			spans[c] = span{lo, hi}
		}
	}
}

// candidatesAround widens a proportional-mapping interval [lo, hi) to a
// workable candidate set (at least minCandidates processes, wrapping
// around the ring of ranks), excluding the master itself.
func candidatesAround(lo, hi, np, master int32) []int32 {
	const minCandidates = 8
	width := hi - lo
	if width < minCandidates {
		// Extend symmetrically around the interval, modulo np.
		extra := minCandidates - width
		lo -= extra / 2
		width = minCandidates
		if width > np {
			width = np
		}
	}
	out := make([]int32, 0, width)
	for k := int32(0); k < width; k++ {
		p := ((lo+k)%np + np) % np
		if p != master {
			out = append(out, p)
		}
	}
	return out
}

// Decisions returns the number of dynamic decisions (Type 2 slave
// selections), the quantity reported by Table 3.
func (m *Mapping) Decisions() int { return m.NumType2 }
