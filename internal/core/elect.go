package core

// Elector is the leader-election criterion used to sequentialize
// concurrent snapshots (§3). Given a candidate and the current leader
// (-1 when undefined), it returns the new leader.
//
// Liveness requires every process to apply the *same total order* over
// initiators: with inconsistent orders two initiators can delay each
// other's replies forever. The paper uses process rank; its conclusion
// singles out the criterion as worth studying, which the ablation
// benchmarks do with the alternatives below (all consistent orders).
type Elector func(candidate, current int32, v *View) int32

// ElectMinRank is the paper's criterion: the lowest rank wins.
func ElectMinRank(candidate, current int32, _ *View) int32 {
	if current < 0 || candidate < current {
		return candidate
	}
	return current
}

// ElectMaxRank prefers the highest rank: a trivially different total
// order used to check the protocol is not rank-0 biased.
func ElectMaxRank(candidate, current int32, _ *View) int32 {
	if current < 0 || candidate > current {
		return candidate
	}
	return current
}

// ElectByKey returns an elector preferring the lowest key, with rank
// breaking ties. Keys must be identical on every process (e.g. the static
// initial loads of the mapping): the order is then consistent and the
// protocol stays live. A natural choice is "least statically loaded
// master first".
func ElectByKey(key []float64) Elector {
	return func(candidate, current int32, _ *View) int32 {
		if current < 0 {
			return candidate
		}
		kc, ku := key[candidate], key[current]
		switch {
		case kc < ku:
			return candidate
		case kc > ku:
			return current
		default:
			return ElectMinRank(candidate, current, nil)
		}
	}
}
