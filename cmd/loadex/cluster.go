package main

// loadex cluster: run the quickstart-style master/slave workload over a
// real localhost TCP cluster and report per-mechanism message and
// selection statistics.
//
// By default the command forks one `loadex node` process per rank (the
// binary re-executes itself), wires them through the ADDR/PEERS stdio
// handshake and aggregates each node's STATS line. With -inproc the
// same nodes run as goroutines inside this process — same sockets, no
// fork — which is what CI uses.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	xnet "repro/internal/net"
)

func runCluster(args []string) error {
	fs := flag.NewFlagSet("loadex cluster", flag.ExitOnError)
	var p nodeParams
	p.register(fs)
	procs := fs.Int("procs", 0, "number of processes (alias for -n)")
	inproc := fs.Bool("inproc", false, "run the nodes in-process (same TCP sockets, no fork)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		p.procs = *procs
	}
	if p.masters > p.procs {
		p.masters = p.procs
	}
	if err := p.validate(); err != nil {
		return err
	}
	mechs := []string{p.mech}
	if p.mech == "all" {
		mechs = nil
		for _, m := range core.Mechanisms() {
			mechs = append(mechs, string(m))
		}
	}
	for _, mech := range mechs {
		// Fail here rather than as a cryptic handshake error after the
		// fork.
		if _, err := core.New(core.Mech(mech), 2, 0, core.Config{}); err != nil {
			return err
		}
	}
	for _, mech := range mechs {
		q := p
		q.mech = mech
		var (
			stats []nodeStats
			err   error
		)
		if *inproc {
			stats, err = runClusterInProc(&q)
		} else {
			stats, err = runClusterForked(&q)
		}
		if err != nil {
			return fmt.Errorf("mechanism %s: %w", mech, err)
		}
		writeClusterReport(os.Stdout, &q, *inproc, stats)
	}
	return nil
}

// runClusterInProc drives the workload on an in-process TCP cluster.
func runClusterInProc(p *nodeParams) ([]nodeStats, error) {
	codec, err := xnet.NewCodec(p.codec)
	if err != nil {
		return nil, err
	}
	cl, err := xnet.NewCluster(p.procs, core.Mech(p.mech), p.config(), xnet.Options{Codec: codec})
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	var wg sync.WaitGroup
	errs := make([]error, p.masters)
	for m := 0; m < p.masters; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < p.decisions; i++ {
				if err := cl.Decide(m, p.work, p.slaves, p.spin); err != nil {
					errs[m] = err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := cl.Drain(60 * time.Second); err != nil {
		return nil, err
	}
	time.Sleep(p.settle)
	stats := make([]nodeStats, p.procs)
	for r := 0; r < p.procs; r++ {
		stats[r] = nodeStats{
			Rank:      r,
			Executed:  cl.Executed(r),
			Mech:      cl.Stats(r),
			Transport: cl.Transport(r),
		}
		if r < p.masters {
			stats[r].Decisions = p.decisions
		}
	}
	return stats, nil
}

// runClusterForked forks one `loadex node` per rank and shepherds the
// stdio handshake.
func runClusterForked(p *nodeParams) ([]nodeStats, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]*child, p.procs)
	defer func() {
		for _, c := range children {
			if c != nil {
				c.stdin.Close()
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
	}()
	for r := 0; r < p.procs; r++ {
		cmd := exec.Command(exe, "node",
			"-rank", strconv.Itoa(r),
			"-n", strconv.Itoa(p.procs),
			"-mech", p.mech,
			"-threshold", fmt.Sprint(p.threshold),
			"-nomore="+strconv.FormatBool(p.noMore),
			"-codec", p.codec,
			"-masters", strconv.Itoa(p.masters),
			"-decisions", strconv.Itoa(p.decisions),
			"-work", fmt.Sprint(p.work),
			"-slaves", strconv.Itoa(p.slaves),
			"-spin", p.spin.String(),
			"-settle", p.settle.String(),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("forking node %d: %w", r, err)
		}
		children[r] = &child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	}
	// Collect every node's bound address…
	addrs := make([]string, p.procs)
	for r, c := range children {
		line, err := scanPrefix(c.out, "ADDR ")
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != strconv.Itoa(r) {
			return nil, fmt.Errorf("node %d: malformed address line %q", r, line)
		}
		addrs[r] = fields[1]
	}
	// …broadcast the full list…
	peers := "PEERS " + strings.Join(addrs, ",") + "\n"
	for r, c := range children {
		if _, err := io.WriteString(c.stdin, peers); err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
	}
	// …and gather each node's report.
	stats := make([]nodeStats, p.procs)
	for r, c := range children {
		line, err := scanPrefix(c.out, "STATS ")
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		if err := json.Unmarshal([]byte(line), &stats[r]); err != nil {
			return nil, fmt.Errorf("node %d: bad stats line: %w", r, err)
		}
	}
	for r, c := range children {
		if err := c.cmd.Wait(); err != nil {
			return nil, fmt.Errorf("node %d: %w", r, err)
		}
		children[r] = nil
	}
	return stats, nil
}

// scanPrefix reads lines until one starts with prefix, returning the
// remainder; other lines pass through to stderr (node diagnostics).
func scanPrefix(sc *bufio.Scanner, prefix string) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return rest, nil
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("stream ended before %q line", strings.TrimSpace(prefix))
}

// writeClusterReport prints the per-mechanism table the paper-style
// experiments report: selections, mechanism messages, wire traffic.
func writeClusterReport(w io.Writer, p *nodeParams, inproc bool, stats []nodeStats) {
	mode := "forked processes"
	if inproc {
		mode = "in-process"
	}
	fmt.Fprintf(w, "== mechanism: %s — %d procs over localhost TCP (%s, codec %s) ==\n",
		p.mech, p.procs, mode, p.codec)
	fmt.Fprintf(w, "workload: %d masters × %d decisions × %g work units over %d least-loaded slaves (spin %s)\n",
		p.masters, p.decisions, p.work, p.slaves, p.spin)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\texecuted\tdecisions\tupdates\treservations\tsnapshots\trestarts\tstate_in\tmsgs_in\tmsgs_out\tbytes_in\tbytes_out")
	var tot nodeStats
	for _, s := range stats {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Rank, s.Executed, s.Decisions,
			s.Mech.UpdatesSent, s.Mech.ReservationsSent,
			s.Mech.SnapshotsInitiated, s.Mech.SnapshotRestarts,
			s.Transport.StateIn, s.Transport.MsgsIn, s.Transport.MsgsOut,
			s.Transport.BytesIn, s.Transport.BytesOut)
		tot.Executed += s.Executed
		tot.Decisions += s.Decisions
		tot.Mech.UpdatesSent += s.Mech.UpdatesSent
		tot.Mech.ReservationsSent += s.Mech.ReservationsSent
		tot.Mech.SnapshotsInitiated += s.Mech.SnapshotsInitiated
		tot.Mech.SnapshotRestarts += s.Mech.SnapshotRestarts
		tot.Transport.StateIn += s.Transport.StateIn
		tot.Transport.MsgsIn += s.Transport.MsgsIn
		tot.Transport.MsgsOut += s.Transport.MsgsOut
		tot.Transport.BytesIn += s.Transport.BytesIn
		tot.Transport.BytesOut += s.Transport.BytesOut
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		tot.Executed, tot.Decisions,
		tot.Mech.UpdatesSent, tot.Mech.ReservationsSent,
		tot.Mech.SnapshotsInitiated, tot.Mech.SnapshotRestarts,
		tot.Transport.StateIn, tot.Transport.MsgsIn, tot.Transport.MsgsOut,
		tot.Transport.BytesIn, tot.Transport.BytesOut)
	tw.Flush()
	fmt.Fprintf(w, "quiescent: all %d work items executed and acknowledged\n\n", tot.Executed)
}
