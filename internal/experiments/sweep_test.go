package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// simRunner executes cells on the deterministic simulator.
func simRunner(t *testing.T) CellRunner {
	t.Helper()
	p := workload.Params{Procs: 4, Masters: 2, Decisions: 2, Work: 30, Slaves: 2, Spin: time.Millisecond}
	cfg := core.Config{Threshold: core.Load{core.Workload: 5}, NoMoreMasterOpt: true}
	return func(c Cell) (*workload.Report, error) {
		w, err := workload.Get(c.Scenario)
		if err != nil {
			return nil, err
		}
		return sim.NewWorkloadDriver().Run(w, core.Mech(c.Mech), cfg, p)
	}
}

func TestSweepAggregatesDeterministicCells(t *testing.T) {
	cells := Cells([]string{"quickstart"}, core.Mechanisms(), []string{"sim"}, nil, nil, nil)
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(cells))
	}
	results, failed := Sweep(cells, 3, simRunner(t), nil)
	if len(failed) != 0 {
		t.Fatalf("failed cells: %v", failed)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, res := range results {
		if res.Repeats != 3 || res.Procs != 4 {
			t.Fatalf("%s: repeats=%d procs=%d", res.Cell, res.Repeats, res.Procs)
		}
		dec := res.Metric(MetricDecisions)
		if dec.N != 3 || dec.Mean != 4 {
			t.Fatalf("%s: decisions summary %+v, want N=3 mean=4", res.Cell, dec)
		}
		// The simulator is deterministic: repeated runs must agree on
		// every message metric (elapsed wall time may differ).
		for _, name := range []string{MetricStateMsgs, MetricStateBytes, MetricUpdates, MetricSnapshotRounds} {
			if s := res.Metric(name); s.Min != s.Max {
				t.Fatalf("%s: %s not deterministic: %+v", res.Cell, name, s)
			}
		}
		if s := res.Metric(MetricStateMsgs); s.Mean <= 0 {
			t.Fatalf("%s: no state messages recorded", res.Cell)
		}
	}
}

func TestSweepVisitsEveryCellPastFailures(t *testing.T) {
	boom := errors.New("boom")
	var visited []string
	cells := []Cell{
		{Scenario: "a", Mech: "m", Runtime: "sim"},
		{Scenario: "b", Mech: "m", Runtime: "sim"},
		{Scenario: "c", Mech: "m", Runtime: "sim"},
	}
	run := func(c Cell) (*workload.Report, error) {
		visited = append(visited, c.Scenario)
		if c.Scenario == "b" {
			return nil, boom
		}
		return &workload.Report{Procs: 2}, nil
	}
	results, failed := Sweep(cells, 1, run, nil)
	if len(visited) != 3 {
		t.Fatalf("visited %v: a failing cell must not abort the sweep", visited)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if len(failed) != 1 || failed[0].Scenario != "b" || !errors.Is(failed[0].Err, boom) {
		t.Fatalf("failed = %v, want exactly cell b with the original error", failed)
	}
	if msg := failed[0].Error(); !strings.Contains(msg, "b × m × sim") {
		t.Fatalf("failure must name the cell, got %q", msg)
	}
}

func TestAggregateZeroFillsIntermittentMetrics(t *testing.T) {
	// A per-kind tally present in one run but absent in another must
	// average as [2, 0], not [2]: intermittent kinds would otherwise
	// report inflated means in the benchmark record.
	withKind := &workload.Report{Procs: 2}
	withKind.Counters.AddState(core.KindNoMoreMaster, core.BytesNoMoreMaster)
	withKind.Counters.AddState(core.KindNoMoreMaster, core.BytesNoMoreMaster)
	withoutKind := &workload.Report{Procs: 2}
	res := Aggregate(Cell{Scenario: "s", Mech: "m", Runtime: "r"}, []*workload.Report{withKind, withoutKind})
	s := res.Metric("msgs[no_more_master]")
	if s.N != 2 || s.Mean != 1 || s.Min != 0 || s.Max != 2 {
		t.Fatalf("intermittent kind summary %+v, want N=2 mean=1 min=0 max=2", s)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	results, failed := Sweep(Cells([]string{"quickstart"}, core.Mechanisms(), []string{"sim"}, nil, nil, nil), 2, simRunner(t), nil)
	if len(failed) != 0 {
		t.Fatalf("failed cells: %v", failed)
	}
	bench := Bench{Label: "test", Repeat: 2, Cells: results}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, bench); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "test" || back.Version != BenchVersion || len(back.Cells) != len(results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i, cell := range back.Cells {
		want := results[i].Metric(MetricStateBytes)
		if got := cell.Metric(MetricStateBytes); got != want {
			t.Fatalf("cell %d state_bytes: %+v != %+v", i, got, want)
		}
	}
}

func TestSweepMarkdownShape(t *testing.T) {
	results, failed := Sweep(Cells([]string{"quickstart"}, core.Mechanisms(), []string{"sim"}, nil, nil, nil), 1, simRunner(t), nil)
	if len(failed) != 0 {
		t.Fatalf("failed cells: %v", failed)
	}
	var buf bytes.Buffer
	WriteSweepMarkdown(&buf, results)
	out := buf.String()
	if !strings.Contains(out, "### quickstart — sim runtime") {
		t.Fatalf("missing group header:\n%s", out)
	}
	// Mechanism rows in the paper's table order.
	order := []string{"| increments |", "| snapshot |", "| naive |"}
	last := -1
	for _, row := range order {
		i := strings.Index(out, row)
		if i < 0 {
			t.Fatalf("missing row %q:\n%s", row, out)
		}
		if i < last {
			t.Fatalf("rows out of paper order:\n%s", out)
		}
		last = i
	}
}
